// Package program provides the thread representation executed by simulated
// cores and a small assembler-style builder used by the workload
// generators.
//
// A Thread is straight-line decoded code plus a base virtual address; the
// cores fetch by instruction index and the base address gives each
// instruction a location in the virtual address space so the I-cache and
// instruction TLB see realistic code footprints.
package program

import (
	"fmt"

	"reunion/internal/isa"
)

// Thread is one software thread: the unit of work bound to a logical
// processor. Workload threads loop forever; test programs end in Halt.
type Thread struct {
	Name     string
	Code     []isa.Instr
	CodeBase uint64 // virtual address of Code[0]
	Entry    int64  // starting instruction index
	InitRegs [isa.NumRegs]int64
}

// PCAddr returns the virtual byte address of the instruction at index pc.
func (t *Thread) PCAddr(pc int64) uint64 {
	return t.CodeBase + uint64(pc)*isa.Bytes
}

// Fetch returns the instruction at index pc and whether pc is in range.
// Wrong-path speculation can drive the fetch PC wild (e.g., after a mute
// core loads garbage through a weak phantom request); out-of-range fetches
// are reported rather than panicking so the core can simply stall until
// recovery redirects it.
func (t *Thread) Fetch(pc int64) (isa.Instr, bool) {
	if pc < 0 || pc >= int64(len(t.Code)) {
		return isa.Instr{}, false
	}
	return t.Code[pc], true
}

type fixup struct {
	at    int
	label string
}

// Builder assembles a Thread. Branch targets may reference labels defined
// before or after the branch; Build resolves them.
type Builder struct {
	name   string
	base   uint64
	code   []isa.Instr
	labels map[string]int64
	fixups []fixup
	regs   [isa.NumRegs]int64
}

// NewBuilder returns a builder for a thread with the given name and code
// base virtual address.
func NewBuilder(name string, codeBase uint64) *Builder {
	return &Builder{name: name, base: codeBase, labels: make(map[string]int64)}
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() int64 { return int64(len(b.code)) }

// Emit appends a raw instruction and returns its index.
func (b *Builder) Emit(i isa.Instr) int64 {
	b.code = append(b.code, i)
	return int64(len(b.code) - 1)
}

// Label defines (or redefines is an error) a label at the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("program: duplicate label %q in %s", name, b.name))
	}
	b.labels[name] = b.PC()
}

// InitReg sets an initial architectural register value for the thread.
func (b *Builder) InitReg(r uint8, v int64) { b.regs[r] = v }

// --- instruction helpers -------------------------------------------------

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Instr{Op: isa.Nop}) }

// Op3 emits a three-register ALU operation.
func (b *Builder) Op3(op isa.Op, rd, rs1, rs2 uint8) {
	b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpI emits a register-immediate ALU operation.
func (b *Builder) OpI(op isa.Op, rd, rs1 uint8, imm int64) {
	b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Li loads an immediate into rd.
func (b *Builder) Li(rd uint8, imm int64) { b.Emit(isa.Instr{Op: isa.Li, Rd: rd, Imm: imm}) }

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 uint8, imm int64) {
	b.Emit(isa.Instr{Op: isa.Addi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 uint8) { b.Op3(isa.Add, rd, rs1, rs2) }

// Ld emits rd = M[rs1+imm].
func (b *Builder) Ld(rd, rs1 uint8, imm int64) {
	b.Emit(isa.Instr{Op: isa.Ld, Rd: rd, Rs1: rs1, Imm: imm})
}

// St emits M[rs1+imm] = rs2.
func (b *Builder) St(rs1 uint8, imm int64, rs2 uint8) {
	b.Emit(isa.Instr{Op: isa.St, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Cas emits an atomic compare-and-swap on (rs1): if M[rs1]==rd then
// M[rs1]=rs2; rd=old value.
func (b *Builder) Cas(rd, rs1, rs2 uint8) { b.Emit(isa.Instr{Op: isa.Cas, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Membar emits a memory barrier.
func (b *Builder) Membar() { b.Emit(isa.Instr{Op: isa.Membar}) }

// Trap emits a system trap with the given service number.
func (b *Builder) Trap(svc int64) { b.Emit(isa.Instr{Op: isa.Trap, Imm: svc}) }

// DevLd emits a non-idempotent device read rd = dev[rs1+imm].
func (b *Builder) DevLd(rd, rs1 uint8, imm int64) {
	b.Emit(isa.Instr{Op: isa.DevLd, Rd: rd, Rs1: rs1, Imm: imm})
}

// DevSt emits a non-idempotent device write dev[rs1+imm] = rs2.
func (b *Builder) DevSt(rs1 uint8, imm int64, rs2 uint8) {
	b.Emit(isa.Instr{Op: isa.DevSt, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Halt emits a thread stop.
func (b *Builder) Halt() { b.Emit(isa.Instr{Op: isa.Halt}) }

// Branch emits a conditional branch to a label.
func (b *Builder) Branch(op isa.Op, rs1, rs2 uint8, label string) {
	b.fixups = append(b.fixups, fixup{at: len(b.code), label: label})
	b.Emit(isa.Instr{Op: op, Rs1: rs1, Rs2: rs2})
}

// Beq branches to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 uint8, label string) { b.Branch(isa.Beq, rs1, rs2, label) }

// Bne branches to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 uint8, label string) { b.Branch(isa.Bne, rs1, rs2, label) }

// Blt branches to label when rs1 < rs2.
func (b *Builder) Blt(rs1, rs2 uint8, label string) { b.Branch(isa.Blt, rs1, rs2, label) }

// Bge branches to label when rs1 >= rs2.
func (b *Builder) Bge(rs1, rs2 uint8, label string) { b.Branch(isa.Bge, rs1, rs2, label) }

// Jmp jumps unconditionally to a label.
func (b *Builder) Jmp(label string) {
	b.fixups = append(b.fixups, fixup{at: len(b.code), label: label})
	b.Emit(isa.Instr{Op: isa.Jmp})
}

// Build resolves labels and returns the finished thread.
func (b *Builder) Build() *Thread {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			panic(fmt.Sprintf("program: undefined label %q in %s", f.label, b.name))
		}
		b.code[f.at].Imm = target
	}
	t := &Thread{Name: b.name, Code: b.code, CodeBase: b.base, InitRegs: b.regs}
	return t
}

// --- shared-memory idioms -------------------------------------------------

// Spinlock emits a test-and-test-and-set acquire loop on the lock word
// whose address is in lockReg, using tmp as scratch. The acquire ends with
// the CAS (serializing, so it orders the critical section) — this is the
// classic routine the paper calls out as ordinary code subject to input
// incoherence.
func (b *Builder) Spinlock(lockReg, tmp uint8) {
	l := fmt.Sprintf(".lk%d", b.PC())
	b.Label(l)
	b.Ld(tmp, lockReg, 0) // spin on read
	b.Bne(tmp, 0, l)      // busy -> retry
	b.Li(tmp, 0)          // expected: unlocked
	b.Emit(isa.Instr{Op: isa.Li, Rd: 31, Imm: 1})
	b.Cas(tmp, lockReg, 31) // try to take it
	b.Bne(tmp, 0, l)        // lost the race -> retry
}

// Unlock emits a release store of 0 to the lock word in lockReg, preceded
// by a MEMBAR so critical-section stores drain first (TSO release).
func (b *Builder) Unlock(lockReg uint8) {
	b.Membar()
	b.Li(30, 0)
	b.St(lockReg, 0, 30)
}
