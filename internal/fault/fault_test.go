package fault

import (
	"testing"

	"reunion/internal/cache"
	"reunion/internal/core"
	"reunion/internal/cpu"
	"reunion/internal/fingerprint"
	"reunion/internal/mem"
	"reunion/internal/program"
	"reunion/internal/sim"
	"reunion/internal/tlb"
)

// echoBelow instantly satisfies cache misses from a memory image.
type echoBelow struct {
	eq  *sim.EventQueue
	mem *mem.Memory
}

func (b *echoBelow) Request(r *cache.Req) {
	if r.Kind == cache.Writeback {
		b.mem.WriteBlock(r.Block, r.Data)
		return
	}
	block, done := r.Block, r.Done
	b.eq.After(5, func() {
		var d mem.Block
		b.mem.ReadBlock(block, &d)
		done(cache.Resp{Data: d, Exclusive: true})
	})
}

func testCore(eq *sim.EventQueue) *cpu.Core {
	b := program.NewBuilder("spin", 0)
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Jmp("loop")
	th := b.Build()
	below := &echoBelow{eq: eq, mem: mem.New()}
	cfg := &cpu.Config{
		FetchWidth: 2, DispatchWidth: 2, IssueWidth: 2, RetireWidth: 2,
		ROBSize: 16, SBSize: 4, FetchQCap: 4, CheckQCap: 16,
		LoadToUse: 2, FrontDepth: 2, L1LoadPorts: 1, L1StorePorts: 1,
		TrapLatency: 5, DevLatency: 5,
		FPMode: fingerprint.Direct, FPInterval: 1,
		TLB: cpu.TLBPolicy{Mode: tlb.Hardware, WalkLatency: 5, HandlerBody: 5, HandlerSerializers: 5},
	}
	l1d := cache.NewL1("d", 0, 0, true, 1<<10, 2, 4, below, false)
	l1i := cache.NewL1("i", 0, 0, true, 1<<10, 2, 4, below, true)
	return cpu.New(0, 0, true, cfg, eq, th, l1d, l1i, tlb.New(16, 2), tlb.New(16, 2),
		&core.NonRedundantGate{EQ: eq})
}

func TestCampaignArmsAndFires(t *testing.T) {
	eq := sim.NewEventQueue()
	c := testCore(eq)
	camp := NewCampaign(3, 50, []*cpu.Core{c})
	for cyc := int64(0); cyc < 5_000; cyc++ {
		eq.Advance(eq.Now() + 1)
		c.Tick()
		camp.Tick(cyc)
	}
	if camp.Injected == 0 {
		t.Fatal("campaign armed nothing")
	}
	if camp.Fired == 0 {
		t.Fatal("no armed fault fired on a register-writing stream")
	}
	if camp.Pending() < 0 {
		t.Fatalf("pending underflow: %d", camp.Pending())
	}
}

func TestCampaignDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		eq := sim.NewEventQueue()
		c := testCore(eq)
		camp := NewCampaign(9, 80, []*cpu.Core{c})
		for cyc := int64(0); cyc < 4_000; cyc++ {
			eq.Advance(eq.Now() + 1)
			c.Tick()
			camp.Tick(cyc)
		}
		return camp.Injected, camp.Fired
	}
	i1, f1 := run()
	i2, f2 := run()
	if i1 != i2 || f1 != f2 {
		t.Fatalf("campaign not deterministic: (%d,%d) vs (%d,%d)", i1, f1, i2, f2)
	}
}

func TestCampaignSkipsHaltedCores(t *testing.T) {
	eq := sim.NewEventQueue()
	b := program.NewBuilder("halt", 0)
	b.Halt()
	below := &echoBelow{eq: eq, mem: mem.New()}
	cfg := &cpu.Config{
		FetchWidth: 1, DispatchWidth: 1, IssueWidth: 1, RetireWidth: 1,
		ROBSize: 8, SBSize: 2, FetchQCap: 2, CheckQCap: 8,
		LoadToUse: 2, FrontDepth: 1, L1LoadPorts: 1, L1StorePorts: 1,
		TrapLatency: 5, DevLatency: 5,
		FPMode: fingerprint.Direct, FPInterval: 1,
		TLB: cpu.TLBPolicy{Mode: tlb.Hardware, WalkLatency: 5, HandlerBody: 5, HandlerSerializers: 5},
	}
	l1d := cache.NewL1("d", 0, 0, true, 1<<10, 2, 4, below, false)
	l1i := cache.NewL1("i", 0, 0, true, 1<<10, 2, 4, below, true)
	c := cpu.New(0, 0, true, cfg, eq, b.Build(), l1d, l1i, tlb.New(16, 2), tlb.New(16, 2),
		&core.NonRedundantGate{EQ: eq})
	camp := NewCampaign(5, 10, []*cpu.Core{c})
	for cyc := int64(0); cyc < 2_000; cyc++ {
		eq.Advance(eq.Now() + 1)
		c.Tick()
		camp.Tick(cyc)
	}
	if !c.Halted() {
		t.Fatal("core did not halt")
	}
	if camp.Injected > 2 {
		t.Fatalf("campaign kept arming a halted core: %d", camp.Injected)
	}
}

func TestFiredHookChains(t *testing.T) {
	eq := sim.NewEventQueue()
	c := testCore(eq)
	prevCalled := false
	c.OnFaultFired = func() { prevCalled = true }
	camp := NewCampaign(3, 50, []*cpu.Core{c})
	for cyc := int64(0); cyc < 2_000 && camp.Fired == 0; cyc++ {
		eq.Advance(eq.Now() + 1)
		c.Tick()
		camp.Tick(cyc)
	}
	if camp.Fired == 0 {
		t.Skip("no fault fired in window")
	}
	if !prevCalled {
		t.Fatal("campaign must chain the pre-existing OnFaultFired hook")
	}
}
