package fault

import (
	"testing"

	"reunion/internal/cache"
	"reunion/internal/core"
	"reunion/internal/cpu"
	"reunion/internal/fingerprint"
	"reunion/internal/mem"
	"reunion/internal/program"
	"reunion/internal/sim"
	"reunion/internal/tlb"
)

// echoBelow instantly satisfies cache misses from a memory image.
type echoBelow struct {
	eq  *sim.EventQueue
	mem *mem.Memory
}

func (b *echoBelow) Request(r *cache.Req) {
	if r.Kind == cache.Writeback {
		b.mem.WriteBlock(r.Block, r.Data)
		return
	}
	block, done := r.Block, r.Done
	b.eq.After(5, func() {
		var d mem.Block
		b.mem.ReadBlock(block, &d)
		done(cache.Resp{Data: d, Exclusive: true})
	})
}

func testCore(eq *sim.EventQueue) *cpu.Core {
	b := program.NewBuilder("spin", 0)
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Jmp("loop")
	th := b.Build()
	below := &echoBelow{eq: eq, mem: mem.New()}
	cfg := &cpu.Config{
		FetchWidth: 2, DispatchWidth: 2, IssueWidth: 2, RetireWidth: 2,
		ROBSize: 16, SBSize: 4, FetchQCap: 4, CheckQCap: 16,
		LoadToUse: 2, FrontDepth: 2, L1LoadPorts: 1, L1StorePorts: 1,
		TrapLatency: 5, DevLatency: 5,
		FPMode: fingerprint.Direct, FPInterval: 1,
		TLB: cpu.TLBPolicy{Mode: tlb.Hardware, WalkLatency: 5, HandlerBody: 5, HandlerSerializers: 5},
	}
	l1d := cache.NewL1("d", 0, 0, true, 1<<10, 2, 4, below, false)
	l1i := cache.NewL1("i", 0, 0, true, 1<<10, 2, 4, below, true)
	return cpu.New(0, 0, true, cfg, eq, th, l1d, l1i, tlb.New(16, 2), tlb.New(16, 2),
		&core.NonRedundantGate{EQ: eq})
}

func TestCampaignArmsAndFires(t *testing.T) {
	eq := sim.NewEventQueue()
	c := testCore(eq)
	camp := NewCampaign(3, 50, []*cpu.Core{c})
	for cyc := int64(0); cyc < 5_000; cyc++ {
		eq.Advance(eq.Now() + 1)
		c.Tick()
		camp.Tick(cyc)
	}
	if camp.Injected == 0 {
		t.Fatal("campaign armed nothing")
	}
	if camp.Fired == 0 {
		t.Fatal("no armed fault fired on a register-writing stream")
	}
	if camp.Pending() < 0 {
		t.Fatalf("pending underflow: %d", camp.Pending())
	}
}

func TestCampaignDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		eq := sim.NewEventQueue()
		c := testCore(eq)
		camp := NewCampaign(9, 80, []*cpu.Core{c})
		for cyc := int64(0); cyc < 4_000; cyc++ {
			eq.Advance(eq.Now() + 1)
			c.Tick()
			camp.Tick(cyc)
		}
		return camp.Injected, camp.Fired
	}
	i1, f1 := run()
	i2, f2 := run()
	if i1 != i2 || f1 != f2 {
		t.Fatalf("campaign not deterministic: (%d,%d) vs (%d,%d)", i1, f1, i2, f2)
	}
}

func TestCampaignSkipsHaltedCores(t *testing.T) {
	eq := sim.NewEventQueue()
	b := program.NewBuilder("halt", 0)
	b.Halt()
	below := &echoBelow{eq: eq, mem: mem.New()}
	cfg := &cpu.Config{
		FetchWidth: 1, DispatchWidth: 1, IssueWidth: 1, RetireWidth: 1,
		ROBSize: 8, SBSize: 2, FetchQCap: 2, CheckQCap: 8,
		LoadToUse: 2, FrontDepth: 1, L1LoadPorts: 1, L1StorePorts: 1,
		TrapLatency: 5, DevLatency: 5,
		FPMode: fingerprint.Direct, FPInterval: 1,
		TLB: cpu.TLBPolicy{Mode: tlb.Hardware, WalkLatency: 5, HandlerBody: 5, HandlerSerializers: 5},
	}
	l1d := cache.NewL1("d", 0, 0, true, 1<<10, 2, 4, below, false)
	l1i := cache.NewL1("i", 0, 0, true, 1<<10, 2, 4, below, true)
	c := cpu.New(0, 0, true, cfg, eq, b.Build(), l1d, l1i, tlb.New(16, 2), tlb.New(16, 2),
		&core.NonRedundantGate{EQ: eq})
	camp := NewCampaign(5, 10, []*cpu.Core{c})
	for cyc := int64(0); cyc < 2_000; cyc++ {
		eq.Advance(eq.Now() + 1)
		c.Tick()
		camp.Tick(cyc)
	}
	if !c.Halted() {
		t.Fatal("core did not halt")
	}
	if camp.Injected > 2 {
		t.Fatalf("campaign kept arming a halted core: %d", camp.Injected)
	}
}

func TestCampaignMeanIntervalClamped(t *testing.T) {
	// Regression: MeanInterval <= 0 used to panic in the RNG
	// (Intn(non-positive)), and MeanInterval == 1 degenerated to zero-gap
	// re-injection. NewCampaign must clamp both into a usable schedule.
	for _, mean := range []int64{-5, 0, 1, 2} {
		eq := sim.NewEventQueue()
		c := testCore(eq)
		camp := NewCampaign(7, mean, []*cpu.Core{c})
		if camp.MeanInterval < 2 {
			t.Fatalf("mean %d not clamped: %d", mean, camp.MeanInterval)
		}
		for cyc := int64(0); cyc < 2_000; cyc++ {
			eq.Advance(eq.Now() + 1)
			c.Tick()
			camp.Tick(cyc)
		}
		if camp.Injected == 0 {
			t.Fatalf("mean %d: campaign armed nothing", mean)
		}
		if camp.Fired == 0 {
			t.Fatalf("mean %d: no fault fired", mean)
		}
	}
}

func TestCampaignScheduleGapPositive(t *testing.T) {
	c := &Campaign{rng: sim.NewRand(1), MeanInterval: 2}
	for i := 0; i < 1_000; i++ {
		now := c.nextAt
		c.schedule(now)
		if c.nextAt <= now {
			t.Fatalf("schedule produced non-positive gap at iteration %d: %d -> %d", i, now, c.nextAt)
		}
	}
}

func TestCampaignMaskedArmedOnHalt(t *testing.T) {
	// A fault armed on a core that halts can never fire; the campaign must
	// retire it as architecturally masked instead of leaving Pending()
	// nonzero forever.
	eq := sim.NewEventQueue()
	b := program.NewBuilder("halt", 0)
	for i := 0; i < 50; i++ {
		b.Addi(1, 1, 1)
	}
	b.Halt()
	below := &echoBelow{eq: eq, mem: mem.New()}
	cfg := &cpu.Config{
		FetchWidth: 1, DispatchWidth: 1, IssueWidth: 1, RetireWidth: 1,
		ROBSize: 8, SBSize: 2, FetchQCap: 2, CheckQCap: 8,
		LoadToUse: 2, FrontDepth: 1, L1LoadPorts: 1, L1StorePorts: 1,
		TrapLatency: 5, DevLatency: 5,
		FPMode: fingerprint.Direct, FPInterval: 1,
		TLB: cpu.TLBPolicy{Mode: tlb.Hardware, WalkLatency: 5, HandlerBody: 5, HandlerSerializers: 5},
	}
	l1d := cache.NewL1("d", 0, 0, true, 1<<10, 2, 4, below, false)
	l1i := cache.NewL1("i", 0, 0, true, 1<<10, 2, 4, below, true)
	c := cpu.New(0, 0, true, cfg, eq, b.Build(), l1d, l1i, tlb.New(16, 2), tlb.New(16, 2),
		&core.NonRedundantGate{EQ: eq})
	// Arm directly just before the halt retires so the flip has no
	// register-writing instruction left to consume.
	camp := NewCampaign(5, 1_000_000, []*cpu.Core{c})
	armed := false
	for cyc := int64(0); cyc < 3_000; cyc++ {
		eq.Advance(eq.Now() + 1)
		c.Tick()
		if c.Halted() && !armed {
			c.ArmFault(3)
			camp.Injected++
			armed = true
		}
		camp.Tick(cyc)
	}
	if !c.Halted() {
		t.Fatal("core did not halt")
	}
	if !armed {
		t.Fatal("test never armed its fault")
	}
	if camp.MaskedArmed != 1 {
		t.Fatalf("armed fault on halted core not retired as masked: MaskedArmed=%d", camp.MaskedArmed)
	}
	if camp.Pending() != 0 {
		t.Fatalf("Pending() stuck nonzero: %d", camp.Pending())
	}
}

func TestInjectionSingleShot(t *testing.T) {
	eq := sim.NewEventQueue()
	c := testCore(eq)
	var fireAt int64 = -1
	shot := Injection{Core: 0, Cycle: 100, Bit: 9}.Arm(eq, c, func(now int64) { fireAt = now })
	for cyc := int64(0); cyc < 2_000; cyc++ {
		eq.Advance(eq.Now() + 1)
		c.Tick()
	}
	if !shot.Armed {
		t.Fatal("injection never armed")
	}
	if !shot.Fired || shot.Unfired() {
		t.Fatal("injection never fired on a register-writing stream")
	}
	if shot.FiredAt < 100 {
		t.Fatalf("fired at %d, before the arm cycle", shot.FiredAt)
	}
	if fireAt != shot.FiredAt {
		t.Fatalf("onFire saw cycle %d, shot recorded %d", fireAt, shot.FiredAt)
	}
}

func TestInjectionOnHaltedCoreStaysUnfired(t *testing.T) {
	eq := sim.NewEventQueue()
	b := program.NewBuilder("halt", 0)
	b.Halt()
	below := &echoBelow{eq: eq, mem: mem.New()}
	cfg := &cpu.Config{
		FetchWidth: 1, DispatchWidth: 1, IssueWidth: 1, RetireWidth: 1,
		ROBSize: 8, SBSize: 2, FetchQCap: 2, CheckQCap: 8,
		LoadToUse: 2, FrontDepth: 1, L1LoadPorts: 1, L1StorePorts: 1,
		TrapLatency: 5, DevLatency: 5,
		FPMode: fingerprint.Direct, FPInterval: 1,
		TLB: cpu.TLBPolicy{Mode: tlb.Hardware, WalkLatency: 5, HandlerBody: 5, HandlerSerializers: 5},
	}
	l1d := cache.NewL1("d", 0, 0, true, 1<<10, 2, 4, below, false)
	l1i := cache.NewL1("i", 0, 0, true, 1<<10, 2, 4, below, true)
	c := cpu.New(0, 0, true, cfg, eq, b.Build(), l1d, l1i, tlb.New(16, 2), tlb.New(16, 2),
		&core.NonRedundantGate{EQ: eq})
	shot := Injection{Core: 0, Cycle: 1_500, Bit: 0}.Arm(eq, c, nil)
	for cyc := int64(0); cyc < 2_000; cyc++ {
		eq.Advance(eq.Now() + 1)
		c.Tick()
	}
	if !c.Halted() {
		t.Fatal("core did not halt")
	}
	if shot.Armed || shot.Fired || !shot.Unfired() {
		t.Fatalf("injection on a halted core must stay unfired: %+v", shot)
	}
}

func TestFiredHookChains(t *testing.T) {
	eq := sim.NewEventQueue()
	c := testCore(eq)
	prevCalled := false
	c.OnFaultFired = func() { prevCalled = true }
	camp := NewCampaign(3, 50, []*cpu.Core{c})
	for cyc := int64(0); cyc < 2_000 && camp.Fired == 0; cyc++ {
		eq.Advance(eq.Now() + 1)
		c.Tick()
		camp.Tick(cyc)
	}
	if camp.Fired == 0 {
		t.Skip("no fault fired in window")
	}
	if !prevCalled {
		t.Fatal("campaign must chain the pre-existing OnFaultFired hook")
	}
}
