// Package fault provides soft-error injection against the Reunion
// execution model, in two forms.
//
// The paper's fault model (§2.1) targets transient bit flips in the
// unprotected processor datapath between fetch and retirement. Campaign
// arms Poisson-ish streams of single-bit flips on randomly chosen cores
// at randomly chosen cycles — the long-running soak used by the
// faultinjection example — while Injection arms exactly one flip at an
// exact cycle on an exact core and bit, which is what a Monte-Carlo
// classification campaign (internal/campaign) needs: every trial's fault
// is a pure function of the trial's draw, so outcomes are reproducible
// and attributable.
//
// Every injected fault must either be detected by output comparison (and
// recovered by rollback + re-execution) or be architecturally masked (the
// flipped result was never consumed — e.g., the instruction was squashed,
// or the fault was still armed when the core halted). The paper does not
// inject faults in its evaluation; this package provides the machinery
// that evaluation assumes.
package fault

import (
	"reunion/internal/cpu"
	"reunion/internal/sim"
)

// Campaign drives continuous fault injection into a set of cores.
type Campaign struct {
	rng   *sim.Rand
	cores []*cpu.Core

	// MeanInterval is the mean number of cycles between injections,
	// clamped to at least 2 so the inter-injection gap is always positive
	// (a non-positive or unit mean would degenerate to zero-gap
	// re-injection, or panic in the RNG).
	MeanInterval int64

	nextAt int64

	Injected int64
	Fired    int64
	// MaskedArmed counts faults that were armed but can never fire because
	// their core halted first: the flip never reached the datapath, so they
	// are architecturally masked by definition.
	MaskedArmed int64
}

// NewCampaign builds an injector over the given cores. meanInterval is
// clamped to a minimum of 2 cycles.
func NewCampaign(seed uint64, meanInterval int64, cores []*cpu.Core) *Campaign {
	if meanInterval < 2 {
		meanInterval = 2
	}
	c := &Campaign{rng: sim.NewRand(seed), cores: cores, MeanInterval: meanInterval}
	for _, core := range cores {
		prev := core.OnFaultFired
		core.OnFaultFired = func() {
			c.Fired++
			if prev != nil {
				prev()
			}
		}
	}
	c.schedule(0)
	return c
}

func (c *Campaign) schedule(now int64) {
	// Geometric-ish spacing around the mean, deterministic from the seed.
	// The gap is at least one cycle: re-injecting in the same cycle would
	// arm the same core twice with only one observable flip.
	gap := c.MeanInterval/2 + int64(c.rng.Intn(int(c.MeanInterval)))
	if gap < 1 {
		gap = 1
	}
	c.nextAt = now + gap
}

// Tick arms a fault when the next injection time arrives, and retires
// armed-but-unfireable faults (core halted) into MaskedArmed. Call once
// per cycle alongside the system tick.
func (c *Campaign) Tick(now int64) {
	if c.Pending() > 0 {
		for _, core := range c.cores {
			if core.Halted() && core.DisarmFault() {
				c.MaskedArmed++
			}
		}
	}
	if now < c.nextAt {
		return
	}
	core := c.cores[c.rng.Intn(len(c.cores))]
	if !core.Halted() && !core.FaultPending() {
		core.ArmFault(uint(c.rng.Intn(64)))
		c.Injected++
	}
	c.schedule(now)
}

// Pending reports how many armed faults have neither fired nor been
// retired as masked.
func (c *Campaign) Pending() int64 { return c.Injected - c.Fired - c.MaskedArmed }

// Injection specifies one precise single-shot fault: flip bit Bit of the
// result of the next register-writing instruction entering the check
// stage on core Core, arming at absolute cycle Cycle.
type Injection struct {
	Core  int   // index into the system's core slice
	Cycle int64 // absolute arm cycle (callers add their measurement offset)
	Bit   uint  // result bit to flip (mod 64)
}

// Shot observes the fate of one armed Injection.
type Shot struct {
	Injection Injection

	// Armed reports that the arm event fired (the target had not halted).
	Armed bool
	// Fired reports that the flip was consumed by an instruction entering
	// check. FiredAt is the absolute cycle of consumption (-1 until then).
	Fired   bool
	FiredAt int64
}

// Arm schedules the injection on the event queue: at Cycle the target is
// armed (unless it has halted, or already carries an armed fault), and the
// first consumption is recorded. onFire, if non-nil, observes the flip the
// cycle it happens — before any detection machinery reacts — so callers
// can latch progress counters for detection-latency measurement. The
// target's pre-existing OnFaultFired hook (e.g. the pair's fault
// attribution) keeps running.
func (i Injection) Arm(eq *sim.EventQueue, target *cpu.Core, onFire func(now int64)) *Shot {
	s := &Shot{Injection: i, FiredAt: -1}
	eq.At(i.Cycle, func() {
		if target.Halted() || target.FaultPending() {
			return
		}
		prev := target.OnFaultFired
		target.OnFaultFired = func() {
			if !s.Fired {
				s.Fired = true
				s.FiredAt = eq.Now()
				if onFire != nil {
					onFire(s.FiredAt)
				}
			}
			if prev != nil {
				prev()
			}
		}
		target.ArmFault(i.Bit)
		s.Armed = true
	})
	return s
}

// Unfired reports whether the shot never flipped a consumed result: the
// arm event found the core halted, or the armed fault was never consumed
// before the trial ended. Such faults are architecturally masked.
func (s *Shot) Unfired() bool { return !s.Fired }
