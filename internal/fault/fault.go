// Package fault provides soft-error injection campaigns against the
// Reunion execution model.
//
// The paper's fault model (§2.1) targets transient bit flips in the
// unprotected processor datapath between fetch and retirement. The
// injector arms single-bit flips in instruction results before they enter
// the check stage, on randomly chosen cores at randomly chosen cycles, and
// verifies the detection/recovery pipeline end to end: every injected
// fault must either be detected by output comparison (and recovered by
// rollback + re-execution) or be architecturally masked (the flipped
// result was never consumed — e.g., the instruction was squashed).
// The paper does not inject faults in its evaluation; this package exists
// to validate the machinery the evaluation assumes.
package fault

import (
	"reunion/internal/cpu"
	"reunion/internal/sim"
)

// Campaign drives fault injection into a set of cores.
type Campaign struct {
	rng   *sim.Rand
	cores []*cpu.Core

	// MeanInterval is the mean number of cycles between injections.
	MeanInterval int64

	nextAt int64

	Injected int64
	Fired    int64
}

// NewCampaign builds an injector over the given cores.
func NewCampaign(seed uint64, meanInterval int64, cores []*cpu.Core) *Campaign {
	c := &Campaign{rng: sim.NewRand(seed), cores: cores, MeanInterval: meanInterval}
	for _, core := range cores {
		prev := core.OnFaultFired
		core.OnFaultFired = func() {
			c.Fired++
			if prev != nil {
				prev()
			}
		}
	}
	c.schedule(0)
	return c
}

func (c *Campaign) schedule(now int64) {
	// Geometric-ish spacing around the mean, deterministic from the seed.
	gap := c.MeanInterval/2 + int64(c.rng.Intn(int(c.MeanInterval)))
	c.nextAt = now + gap
}

// Tick arms a fault when the next injection time arrives. Call once per
// cycle alongside the system tick.
func (c *Campaign) Tick(now int64) {
	if now < c.nextAt {
		return
	}
	core := c.cores[c.rng.Intn(len(c.cores))]
	if !core.Halted() && !core.FaultPending() {
		core.ArmFault(uint(c.rng.Intn(64)))
		c.Injected++
	}
	c.schedule(now)
}

// Pending reports how many armed faults have not yet fired.
func (c *Campaign) Pending() int64 { return c.Injected - c.Fired }
