// Package stats provides the measurement machinery of the evaluation
// (paper §5): matched-pair comparison of performance across seeds with
// 95% confidence intervals, and small numeric helpers for the result
// tables.
package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// two-sided 95% Student t critical values for df = 1..30; beyond that the
// normal approximation 1.96 is close enough.
var t95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// T95 returns the two-sided 95% t critical value for the given degrees of
// freedom.
func T95(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df <= len(t95) {
		return t95[df-1]
	}
	return 1.96
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
// With fewer than two observations no interval is estimable; it returns 0
// rather than ±Inf so degenerate inputs stay finite in serialized results
// (JSON cannot encode Inf) and downstream arithmetic.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return T95(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}

// MatchedPair is the paper's sampling methodology (per SimFlex [24]):
// performance changes are estimated per matched sample (same seed, same
// checkpoint) and aggregated, which cancels sample-to-sample workload
// variation.
type MatchedPair struct {
	Ratios []float64 // test/baseline per seed
}

// Add records one matched observation.
func (m *MatchedPair) Add(baseline, test float64) {
	if baseline > 0 {
		m.Ratios = append(m.Ratios, test/baseline)
	}
}

// Mean returns the mean performance ratio.
func (m *MatchedPair) Mean() float64 { return Mean(m.Ratios) }

// CI returns the 95% confidence half-width of the ratio.
func (m *MatchedPair) CI() float64 { return CI95(m.Ratios) }

// String renders "0.95 ±0.01".
func (m *MatchedPair) String() string {
	if len(m.Ratios) < 2 {
		return fmt.Sprintf("%.3f", m.Mean())
	}
	return fmt.Sprintf("%.3f ±%.3f", m.Mean(), m.CI())
}

// GeoMean returns the geometric mean (used for class averages of
// normalized IPC).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Online accumulates a stream's count, mean, and variance in one pass
// (Welford's algorithm), so sweep consumers can summarize thousands of
// streamed results without buffering them.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation in.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 for an empty stream).
func (o *Online) Mean() float64 { return o.mean }

// StdDev returns the running sample standard deviation (n-1 denominator).
func (o *Online) StdDev() float64 {
	if o.n < 2 {
		return 0
	}
	return math.Sqrt(o.m2 / float64(o.n-1))
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
// Like the package-level CI95, it returns 0 (not ±Inf) for n < 2.
func (o *Online) CI95() float64 {
	if o.n < 2 {
		return 0
	}
	return T95(o.n-1) * o.StdDev() / math.Sqrt(float64(o.n))
}

// String renders "0.950 ±0.010 (n=12)".
func (o *Online) String() string {
	if o.n < 2 {
		return fmt.Sprintf("%.3f (n=%d)", o.mean, o.n)
	}
	return fmt.Sprintf("%.3f ±%.3f (n=%d)", o.Mean(), o.CI95(), o.n)
}

// PerMillion scales an event count to events per million instructions.
func PerMillion(events, instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(events) * 1e6 / float64(instructions)
}

// WilsonCI returns the 95% Wilson score interval for a binomial
// proportion of k successes in n trials. Unlike the normal approximation
// it stays inside [0,1] and behaves at k=0 and k=n, which is exactly the
// regime coverage campaigns live in (zero observed SDCs still leaves an
// honest upper bound on the SDC rate).
func WilsonCI(k, n int64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Histogram accumulates non-negative integer observations (e.g. detection
// latencies in cycles) into power-of-two buckets, keeping exact count,
// sum, min and max. Quantiles are bucket-resolution estimates — at most a
// factor-of-two overestimate — which is the right cost/fidelity trade for
// summarizing thousands of streamed trials without buffering them.
type Histogram struct {
	buckets [65]int64 // buckets[i] counts values with bit length i (0 → value 0)
	n       int64
	sum     int64
	min     int64
	max     int64
}

// Add folds one observation in; negative values are clamped to 0.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.buckets[bits.Len64(uint64(v))]++
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the exact mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min returns the smallest observation (0 for an empty histogram).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest observation (0 for an empty histogram).
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// top of the bucket where the cumulative count crosses q·n, clamped to
// the observed max. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			if i == 0 {
				return 0
			}
			top := int64(1)<<uint(i) - 1
			if top > h.max {
				top = h.max
			}
			return top
		}
	}
	return h.max
}

// Buckets calls fn for every non-empty bucket in ascending value order
// with the bucket's inclusive value range and count.
func (h *Histogram) Buckets(fn func(lo, hi, count int64)) {
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if i == 0 {
			fn(0, 0, c)
			continue
		}
		fn(int64(1)<<uint(i-1), int64(1)<<uint(i)-1, c)
	}
}

// String renders "n=42 mean=13.5 p50≤15 p95≤63 max=70".
func (h *Histogram) String() string {
	if h.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50≤%d p95≤%d max=%d",
		h.n, h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.max)
}
