// Package stats provides the measurement machinery of the evaluation
// (paper §5): matched-pair comparison of performance across seeds with
// 95% confidence intervals, and small numeric helpers for the result
// tables.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// two-sided 95% Student t critical values for df = 1..30; beyond that the
// normal approximation 1.96 is close enough.
var t95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// T95 returns the two-sided 95% t critical value for the given degrees of
// freedom.
func T95(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df <= len(t95) {
		return t95[df-1]
	}
	return 1.96
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.Inf(1)
	}
	return T95(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}

// MatchedPair is the paper's sampling methodology (per SimFlex [24]):
// performance changes are estimated per matched sample (same seed, same
// checkpoint) and aggregated, which cancels sample-to-sample workload
// variation.
type MatchedPair struct {
	Ratios []float64 // test/baseline per seed
}

// Add records one matched observation.
func (m *MatchedPair) Add(baseline, test float64) {
	if baseline > 0 {
		m.Ratios = append(m.Ratios, test/baseline)
	}
}

// Mean returns the mean performance ratio.
func (m *MatchedPair) Mean() float64 { return Mean(m.Ratios) }

// CI returns the 95% confidence half-width of the ratio.
func (m *MatchedPair) CI() float64 { return CI95(m.Ratios) }

// String renders "0.95 ±0.01".
func (m *MatchedPair) String() string {
	if len(m.Ratios) < 2 {
		return fmt.Sprintf("%.3f", m.Mean())
	}
	return fmt.Sprintf("%.3f ±%.3f", m.Mean(), m.CI())
}

// GeoMean returns the geometric mean (used for class averages of
// normalized IPC).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Online accumulates a stream's count, mean, and variance in one pass
// (Welford's algorithm), so sweep consumers can summarize thousands of
// streamed results without buffering them.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation in.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 for an empty stream).
func (o *Online) Mean() float64 { return o.mean }

// StdDev returns the running sample standard deviation (n-1 denominator).
func (o *Online) StdDev() float64 {
	if o.n < 2 {
		return 0
	}
	return math.Sqrt(o.m2 / float64(o.n-1))
}

// CI95 returns the half-width of the 95% confidence interval of the mean.
func (o *Online) CI95() float64 {
	if o.n < 2 {
		return math.Inf(1)
	}
	return T95(o.n-1) * o.StdDev() / math.Sqrt(float64(o.n))
}

// String renders "0.950 ±0.010 (n=12)".
func (o *Online) String() string {
	if o.n < 2 {
		return fmt.Sprintf("%.3f (n=%d)", o.mean, o.n)
	}
	return fmt.Sprintf("%.3f ±%.3f (n=%d)", o.Mean(), o.CI95(), o.n)
}

// PerMillion scales an event count to events per million instructions.
func PerMillion(events, instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(events) * 1e6 / float64(instructions)
}
