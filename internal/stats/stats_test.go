package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !approx(Mean(xs), 5, 1e-12) {
		t.Fatalf("mean %v", Mean(xs))
	}
	if !approx(StdDev(xs), 2.138, 0.001) {
		t.Fatalf("std %v", StdDev(xs))
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestT95Table(t *testing.T) {
	if !approx(T95(1), 12.706, 1e-9) || !approx(T95(10), 2.228, 1e-9) {
		t.Fatal("t-table values")
	}
	if T95(100) != 1.96 {
		t.Fatal("large-df approximation")
	}
	if !math.IsInf(T95(0), 1) {
		t.Fatal("df=0 must be infinite")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{10, 10, 10, 10}
	if CI95(xs) != 0 {
		t.Fatal("zero-variance CI must be 0")
	}
	if CI95([]float64{1}) != 0 {
		t.Fatal("single sample CI must be 0 (no estimable interval)")
	}
	// n=4, std=1: CI = 3.182 * 1/2
	ys := []float64{-1, 1, -1, 1}
	sd := StdDev(ys)
	if !approx(CI95(ys), 3.182*sd/2, 1e-9) {
		t.Fatalf("CI %v", CI95(ys))
	}
}

func TestMatchedPair(t *testing.T) {
	var mp MatchedPair
	mp.Add(2, 1)   // 0.5
	mp.Add(4, 3)   // 0.75
	mp.Add(0, 100) // ignored (zero baseline)
	if len(mp.Ratios) != 2 {
		t.Fatalf("ratios %v", mp.Ratios)
	}
	if !approx(mp.Mean(), 0.625, 1e-12) {
		t.Fatalf("mean %v", mp.Mean())
	}
	if mp.String() == "" {
		t.Fatal("string")
	}
	var single MatchedPair
	single.Add(1, 1)
	if single.String() != "1.000" {
		t.Fatalf("single-sample string %q", single.String())
	}
}

func TestGeoMean(t *testing.T) {
	if !approx(GeoMean([]float64{1, 4}), 2, 1e-12) {
		t.Fatal("geomean")
	}
	if GeoMean([]float64{1, 0}) != 0 || GeoMean(nil) != 0 {
		t.Fatal("degenerate geomean")
	}
	// Property: geomean of equal values is that value; geomean <= arith mean.
	f := func(v float64, n uint8) bool {
		v = math.Abs(v)
		if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) || v > 1e100 {
			return true
		}
		xs := make([]float64, int(n%10)+1)
		for i := range xs {
			xs[i] = v
		}
		return approx(GeoMean(xs), v, v*1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	if o.N() != len(xs) {
		t.Fatalf("N = %d", o.N())
	}
	if !approx(o.Mean(), Mean(xs), 1e-12) {
		t.Fatalf("online mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if !approx(o.StdDev(), StdDev(xs), 1e-12) {
		t.Fatalf("online std %v vs batch %v", o.StdDev(), StdDev(xs))
	}
	if !approx(o.CI95(), CI95(xs), 1e-12) {
		t.Fatalf("online CI %v vs batch %v", o.CI95(), CI95(xs))
	}
	// Property: agreement holds for arbitrary streams.
	f := func(raw []float64) bool {
		var clean []float64
		for _, v := range raw {
			if math.IsInf(v, 0) || math.IsNaN(v) || math.Abs(v) > 1e50 {
				continue
			}
			clean = append(clean, v)
		}
		if len(clean) < 2 {
			return true
		}
		var on Online
		for _, v := range clean {
			on.Add(v)
		}
		scale := math.Max(1, math.Abs(Mean(clean)))
		return approx(on.Mean(), Mean(clean), 1e-9*scale) &&
			approx(on.StdDev(), StdDev(clean), 1e-6*math.Max(scale, StdDev(clean)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineDegenerate(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.StdDev() != 0 || o.CI95() != 0 {
		t.Fatal("empty accumulator")
	}
	o.Add(3)
	if o.Mean() != 3 || o.StdDev() != 0 || o.CI95() != 0 {
		t.Fatal("single observation")
	}
	if o.String() != "3.000 (n=1)" {
		t.Fatalf("string %q", o.String())
	}
}

// TestDegenerateInputsDefined is the empty/degenerate-input contract:
// every summary statistic must return a defined, finite value for n=0 and
// n=1 — never NaN or ±Inf, which poison downstream aggregation and cannot
// be serialized to JSON results files.
func TestDegenerateInputsDefined(t *testing.T) {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

	t.Run("Histogram.Mean", func(t *testing.T) {
		cases := []struct {
			name string
			add  []int64
			want float64
		}{
			{"n=0", nil, 0},
			{"n=1", []int64{7}, 7},
			{"n=1 zero", []int64{0}, 0},
			{"n=1 negative clamps", []int64{-5}, 0},
		}
		for _, c := range cases {
			var h Histogram
			for _, v := range c.add {
				h.Add(v)
			}
			if got := h.Mean(); !finite(got) || got != c.want {
				t.Errorf("%s: Mean() = %v, want %v", c.name, got, c.want)
			}
			if q := h.Quantile(0.5); q < 0 {
				t.Errorf("%s: Quantile(0.5) = %v", c.name, q)
			}
		}
	})

	t.Run("Online.CI95", func(t *testing.T) {
		cases := []struct {
			name string
			add  []float64
			want float64
		}{
			{"n=0", nil, 0},
			{"n=1", []float64{3}, 0},
			{"n=2", []float64{1, 1}, 0},
		}
		for _, c := range cases {
			var o Online
			for _, v := range c.add {
				o.Add(v)
			}
			if got := o.CI95(); !finite(got) || got != c.want {
				t.Errorf("%s: CI95() = %v, want %v", c.name, got, c.want)
			}
		}
	})

	t.Run("GeoMean", func(t *testing.T) {
		cases := []struct {
			name string
			xs   []float64
			want float64
		}{
			{"n=0", nil, 0},
			{"n=1", []float64{2.5}, 2.5},
			{"n=1 zero", []float64{0}, 0},
			{"n=1 negative", []float64{-3}, 0},
		}
		for _, c := range cases {
			if got := GeoMean(c.xs); !finite(got) || got != c.want {
				t.Errorf("%s: GeoMean(%v) = %v, want %v", c.name, c.xs, got, c.want)
			}
		}
	})

	t.Run("WilsonCI", func(t *testing.T) {
		cases := []struct {
			name           string
			k, n           int64
			wantLo, wantHi float64 // -1 = only check finiteness and bounds
		}{
			{"n=0", 0, 0, 0, 1},
			{"n=0 k>0", 3, 0, 0, 1},
			{"n=1 k=0", 0, 1, -1, -1},
			{"n=1 k=1", 1, 1, -1, -1},
			{"n negative", 0, -2, 0, 1},
		}
		for _, c := range cases {
			lo, hi := WilsonCI(c.k, c.n)
			if !finite(lo) || !finite(hi) || lo < 0 || hi > 1 || lo > hi {
				t.Errorf("%s: WilsonCI(%d,%d) = (%v,%v)", c.name, c.k, c.n, lo, hi)
			}
			if c.wantLo >= 0 && (lo != c.wantLo || hi != c.wantHi) {
				t.Errorf("%s: WilsonCI(%d,%d) = (%v,%v), want (%v,%v)",
					c.name, c.k, c.n, lo, hi, c.wantLo, c.wantHi)
			}
		}
	})
}

func TestPerMillion(t *testing.T) {
	if PerMillion(5, 1_000_000) != 5 {
		t.Fatal("per million")
	}
	if PerMillion(5, 0) != 0 {
		t.Fatal("zero instructions")
	}
	if !approx(PerMillion(1, 2_000_000), 0.5, 1e-12) {
		t.Fatal("fractional rate")
	}
}

func TestWilsonCI(t *testing.T) {
	// Degenerate inputs stay honest.
	if lo, hi := WilsonCI(0, 0); lo != 0 || hi != 1 {
		t.Fatalf("n=0: [%v,%v]", lo, hi)
	}
	// k=0 leaves a nonzero upper bound; k=n leaves a sub-one lower bound.
	lo, hi := WilsonCI(0, 50)
	if lo != 0 || hi <= 0 || hi > 0.15 {
		t.Fatalf("0/50: [%v,%v]", lo, hi)
	}
	lo, hi = WilsonCI(50, 50)
	if hi != 1 || lo >= 1 || lo < 0.85 {
		t.Fatalf("50/50: [%v,%v]", lo, hi)
	}
	// A balanced proportion brackets p and tightens with n.
	lo1, hi1 := WilsonCI(5, 10)
	lo2, hi2 := WilsonCI(500, 1000)
	if lo1 >= 0.5 || hi1 <= 0.5 || lo2 >= 0.5 || hi2 <= 0.5 {
		t.Fatal("interval must bracket p=0.5")
	}
	if hi2-lo2 >= hi1-lo1 {
		t.Fatal("interval must tighten with n")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.String() != "n=0" || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram")
	}
	for v := int64(1); v <= 100; v++ {
		h.Add(v)
	}
	if h.N() != 100 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("n=%d min=%d max=%d", h.N(), h.Min(), h.Max())
	}
	if !approx(h.Mean(), 50.5, 1e-12) {
		t.Fatalf("mean %v", h.Mean())
	}
	// Quantiles are bucket-resolution upper bounds: within 2x of exact,
	// never below the exact rank value, clamped to max.
	for _, q := range []float64{0.5, 0.9, 0.95, 1} {
		exact := int64(q * 100)
		got := h.Quantile(q)
		if got < exact || got > 2*exact+1 || got > h.Max() {
			t.Fatalf("q%.2f: got %d, exact %d", q, got, exact)
		}
	}
	// Negative observations clamp to zero, zero lands in its own bucket.
	var z Histogram
	z.Add(-5)
	z.Add(0)
	if z.Quantile(1) != 0 || z.Min() != 0 || z.N() != 2 {
		t.Fatalf("zero bucket: %s", z.String())
	}
	// Bucket walk covers every observation exactly once, in order.
	var total int64
	lastHi := int64(-1)
	h.Buckets(func(lo, hi, count int64) {
		if lo <= lastHi {
			t.Fatalf("bucket [%d,%d] out of order", lo, hi)
		}
		lastHi = hi
		total += count
	})
	if total != 100 {
		t.Fatalf("buckets cover %d of 100", total)
	}
}
