package sim

import (
	"fmt"
	"testing"
)

// fireLog is an EventRunner that records each firing as "desc@cycle".
type fireLog struct {
	q   *EventQueue
	log []string
}

func (f *fireLog) RunEvent(desc any) {
	f.log = append(f.log, fmt.Sprintf("%v@%d", desc, f.q.Now()))
}

// fireCount is an EventRunner with an allocation-free fire path.
type fireCount struct{ n int }

func (f *fireCount) RunEvent(any) { f.n++ }

// TestEventPoolSnapshotBitIdentity is the regression test for the event
// free list's snapshot contract. A snapshot shares *Event pointers with
// the live queue, so an event that fires after a snapshot captured it
// must NOT return to the pool: if it did, a later schedule would
// overwrite its fields in place and a restore would replay the wrong
// event. The scenario below is constructed so that exactly that
// corruption would occur without the generation guard.
func TestEventPoolSnapshotBitIdentity(t *testing.T) {
	q := NewEventQueue()
	f := &fireLog{q: q}

	// Prime the pool: schedule and fire one event so the pool holds a
	// recyclable Event struct.
	q.AtR(10, "prime", f)
	q.Advance(10)

	// This schedule reuses the pooled Event. The snapshot then captures a
	// pointer to it.
	q.AtR(20, "kept", f)
	snap := q.Snapshot()

	// Fire the snapshotted event. It predates the snapshot, so it must be
	// leaked to the GC, not recycled.
	q.Advance(20)
	// If it were recycled, this schedule would rewrite the snapshot's
	// event in place as ("clobber", 30).
	q.AtR(30, "clobber", f)
	q.Advance(30)

	want := []string{"prime@10", "kept@20", "clobber@30"}
	if fmt.Sprint(f.log) != fmt.Sprint(want) {
		t.Fatalf("live run fired %v, want %v", f.log, want)
	}

	// Restore twice: each replay must fire exactly the snapshotted event,
	// with its original descriptor and cycle.
	for i := 0; i < 2; i++ {
		q.Restore(snap)
		f.log = nil
		q.Advance(30)
		if len(f.log) != 1 || f.log[0] != "kept@20" {
			t.Fatalf("restore #%d replayed %v, want [kept@20]", i, f.log)
		}
		// Post-restore scheduling may recycle current-generation events,
		// but never the snapshot's.
		q.AtR(40, "post", f)
		q.Advance(40)
	}
}

// TestEventQueueScheduleZeroAlloc asserts the descriptor-scheduling fast
// path allocates nothing in steady state: fired events recycle through
// the pool, and AtR copies the runner interface without boxing.
func TestEventQueueScheduleZeroAlloc(t *testing.T) {
	q := NewEventQueue()
	f := &fireCount{}
	desc := any(&struct{ n int }{}) // pre-boxed descriptor

	// Warm the pool.
	q.AtR(q.Now()+1, desc, f)
	q.Advance(q.Now() + 1)

	allocs := testing.AllocsPerRun(1000, func() {
		q.AtR(q.Now()+1, desc, f)
		q.AtR(q.Now()+2, desc, f)
		q.Advance(q.Now() + 2)
	})
	if allocs != 0 {
		t.Fatalf("schedule/fire cycle allocates %v per run, want 0", allocs)
	}
}

// BenchmarkEventQueueScheduleAdvance measures the kernel's hottest
// engine operation: scheduling an event and popping it. The descriptor
// variant is the production fast path (zero-alloc, pooled); the closure
// variant pays a closure allocation per schedule.
func BenchmarkEventQueueScheduleAdvance(b *testing.B) {
	b.Run("descriptor", func(b *testing.B) {
		q := NewEventQueue()
		f := &fireCount{}
		desc := any(&struct{ n int }{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.AtR(q.Now()+1, desc, f)
			q.Advance(q.Now() + 1)
		}
	})
	b.Run("closure", func(b *testing.B) {
		q := NewEventQueue()
		n := 0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.At(q.Now()+1, func() { n++ })
			q.Advance(q.Now() + 1)
		}
	})
	// Deep heap: schedule+pop with 64 events pending far in the future,
	// so every operation pays a realistic sift depth.
	b.Run("descriptor-deep", func(b *testing.B) {
		q := NewEventQueue()
		f := &fireCount{}
		desc := any(&struct{ n int }{})
		for i := int64(0); i < 64; i++ {
			q.AtR(1<<40+i, desc, f)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.AtR(q.Now()+1, desc, f)
			q.Advance(q.Now() + 1)
		}
	})
}
