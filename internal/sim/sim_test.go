package sim

import (
	"testing"
	"testing/quick"
)

func TestEventQueueOrdering(t *testing.T) {
	eq := NewEventQueue()
	var got []int
	eq.At(5, func() { got = append(got, 5) })
	eq.At(3, func() { got = append(got, 3) })
	eq.At(5, func() { got = append(got, 50) }) // same cycle: FIFO
	eq.At(1, func() { got = append(got, 1) })
	eq.Advance(10)
	want := []int{1, 3, 5, 50}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if eq.Now() != 10 {
		t.Fatalf("Now=%d want 10", eq.Now())
	}
}

func TestEventQueuePartialAdvance(t *testing.T) {
	eq := NewEventQueue()
	fired := 0
	eq.At(5, func() { fired++ })
	eq.At(15, func() { fired++ })
	eq.Advance(10)
	if fired != 1 {
		t.Fatalf("fired=%d want 1", fired)
	}
	if eq.Pending() != 1 {
		t.Fatalf("pending=%d want 1", eq.Pending())
	}
	eq.Advance(20)
	if fired != 2 {
		t.Fatalf("fired=%d want 2", fired)
	}
}

func TestEventQueuePastSchedulingClamps(t *testing.T) {
	eq := NewEventQueue()
	eq.Advance(100)
	fired := false
	eq.At(5, func() { fired = true }) // in the past: clamps to now
	eq.Advance(100)
	if !fired {
		t.Fatal("past-scheduled event did not fire at current cycle")
	}
}

func TestEventQueueCascade(t *testing.T) {
	// An event scheduling another event at the same cycle must fire within
	// the same Advance.
	eq := NewEventQueue()
	var seq []string
	eq.At(5, func() {
		seq = append(seq, "a")
		eq.After(0, func() { seq = append(seq, "b") })
	})
	eq.Advance(5)
	if len(seq) != 2 || seq[0] != "a" || seq[1] != "b" {
		t.Fatalf("cascade: %v", seq)
	}
}

func TestAfterUsesNow(t *testing.T) {
	eq := NewEventQueue()
	eq.Advance(7)
	var at int64
	eq.After(3, func() { at = eq.Now() })
	eq.Advance(100)
	if at != 10 {
		t.Fatalf("After(3) fired at %d, want 10", at)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d times", same)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13)=%d out of range", v)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64=%v out of [0,1)", f)
		}
	}
}

func TestMix64(t *testing.T) {
	if Mix64(1) == Mix64(2) {
		t.Fatal("Mix64 collision on adjacent inputs")
	}
	if Mix64(0x1234) != Mix64(0x1234) {
		t.Fatal("Mix64 not deterministic")
	}
	// Property: Mix64 is injective-ish on random inputs (no collisions in
	// a modest sample).
	seen := make(map[uint64]uint64)
	f := func(x uint64) bool {
		m := Mix64(x)
		if prev, ok := seen[m]; ok && prev != x {
			return false
		}
		seen[m] = x
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRandBoolBias(t *testing.T) {
	r := NewRand(11)
	n := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.25) {
			n++
		}
	}
	if n < 2200 || n > 2800 {
		t.Fatalf("Bool(0.25) fired %d/10000", n)
	}
}

func TestEventQueueSnapshotRestore(t *testing.T) {
	eq := NewEventQueue()
	var fired []int
	eq.At(3, func() { fired = append(fired, 3) })
	eq.At(7, func() { fired = append(fired, 7) })
	eq.Advance(4)
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("pre-snapshot fires %v", fired)
	}

	snap := eq.Snapshot()
	if eq.Pending() != 1 || eq.Now() != 4 {
		t.Fatal("snapshot perturbed the queue")
	}

	// Diverge: fire the pending event, schedule and fire extra ones.
	eq.At(5, func() { fired = append(fired, 5) })
	eq.Advance(10)
	if len(fired) != 3 {
		t.Fatalf("divergent fires %v", fired)
	}

	// Restore twice; each replay fires exactly the snapshotted event.
	for i := 0; i < 2; i++ {
		eq.Restore(snap)
		if eq.Now() != 4 || eq.Pending() != 1 {
			t.Fatalf("restore #%d: now=%d pending=%d", i, eq.Now(), eq.Pending())
		}
		fired = nil
		eq.Advance(10)
		if len(fired) != 1 || fired[0] != 7 {
			t.Fatalf("restore #%d fires %v", i, fired)
		}
	}
}

func TestEventQueueSnapshotPreservesSameCycleOrder(t *testing.T) {
	eq := NewEventQueue()
	var got []string
	for _, tag := range []string{"a", "b", "c"} {
		tag := tag
		eq.At(5, func() { got = append(got, tag) })
	}
	snap := eq.Snapshot()
	eq.Advance(5)
	want := append([]string(nil), got...)

	eq.Restore(snap)
	got = nil
	eq.Advance(5)
	if len(want) != 3 || len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("same-cycle FIFO broke across restore: %v vs %v", got, want)
	}
}
