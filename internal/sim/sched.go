package sim

// Tickable is a clocked component registered with the Scheduler. The tick
// contract has three parts:
//
//   - Tick advances the component by one cycle. Ticks happen in
//     registration order, after every event due at the new cycle has
//     fired.
//   - QuiesceWake is queried immediately after a Tick. quiet reports that
//     re-ticking the component — with no intervening event and no activity
//     from any other component — would change nothing beyond the per-cycle
//     idle accounting declared via AccountIdle. wake, when positive, is
//     the earliest future cycle at which the component needs a tick on its
//     own (a known latency expiring: an execution completing, a TLB walk
//     finishing, a divergence watchdog deadline). wake == 0 means the
//     component is purely event-driven: only a scheduled event (or another
//     component's activity) can give it work.
//   - AccountIdle(n) applies the accounting n skipped quiescent cycles
//     would have accrued under per-cycle ticking (cycle counters, occupancy
//     integrals, stall counters that increment while blocked). It is
//     called only for cycles the Scheduler proved quiescent, so the rates
//     observed by the last real Tick are exact.
//
// A component may always report quiet=false; that only costs performance.
// Reporting quiet=true when a tick would have changed state breaks the
// cycle-exact equivalence between the fast-forward and naive kernels.
type Tickable interface {
	Tick()
	QuiesceWake() (wake int64, quiet bool)
	AccountIdle(cycles int64)
}

// Scheduler owns the simulation clock and the registered tickable
// components. It offers exactly one stepping primitive (Step: fire due
// events, tick everything) plus FastForward, which jumps the clock over
// provably idle cycles in one move. A driver that never calls FastForward
// gets the classic poll-everything kernel; one that calls it after every
// Step gets the quiescence-aware kernel. Both produce bit-identical
// simulations.
type Scheduler struct {
	eq    *EventQueue
	comps []Tickable

	// Steps counts real per-cycle steps; FastForwards counts jumps and
	// SkippedCycles the idle cycles they elided. simulated cycles =
	// Steps + SkippedCycles.
	Steps         int64
	FastForwards  int64
	SkippedCycles int64
}

// NewScheduler builds a scheduler over the given event queue.
func NewScheduler(eq *EventQueue) *Scheduler { return &Scheduler{eq: eq} }

// Register appends a component to the tick order. Registration order is
// the per-cycle tick order and must not change mid-simulation.
func (s *Scheduler) Register(c Tickable) { s.comps = append(s.comps, c) }

// Now returns the current cycle.
func (s *Scheduler) Now() int64 { return s.eq.Now() }

// Step advances one cycle: the clock moves to now+1, every event due at or
// before the new cycle fires in deterministic order, then every component
// ticks in registration order.
func (s *Scheduler) Step() {
	s.eq.Advance(s.eq.Now() + 1)
	for _, c := range s.comps {
		c.Tick()
	}
	s.Steps++
}

// FastForward jumps the clock over idle cycles when every component is
// quiescent. The jump target is the earliest of: the next scheduled event,
// every component's self-wake cycle, and limit (an external deadline the
// caller must observe per-cycle, e.g. a run window boundary or the
// liveness watchdog). The clock lands on target-1, so the caller's next
// Step performs the target cycle exactly as the naive kernel would have.
// Skipped cycles receive their idle accounting via AccountIdle. Returns
// the number of cycles skipped (0 when any component still has work).
func (s *Scheduler) FastForward(limit int64) int64 {
	now := s.eq.Now()
	if limit <= now+1 {
		return 0
	}
	target := limit
	for _, c := range s.comps {
		wake, quiet := c.QuiesceWake()
		if !quiet {
			return 0
		}
		if wake > now && wake < target {
			target = wake
		}
	}
	if at, ok := s.eq.NextAt(); ok && at < target {
		target = at
	}
	skip := target - 1 - now
	if skip <= 0 {
		return 0
	}
	for _, c := range s.comps {
		c.AccountIdle(skip)
	}
	// No event lies in (now, now+skip] by construction of target, so this
	// advance only moves the clock.
	s.eq.Advance(now + skip)
	s.FastForwards++
	s.SkippedCycles += skip
	return skip
}

// ResetStats zeroes the kernel-efficiency counters (measurement-window
// boundary): without this, warmup-phase steps, jumps and skipped cycles
// would bleed into measured kernel metrics.
func (s *Scheduler) ResetStats() {
	s.Steps, s.FastForwards, s.SkippedCycles = 0, 0, 0
}

// SchedulerState is a checkpoint of the scheduler's counters (the clock
// itself lives in the EventQueue, and the component list never changes
// mid-simulation).
type SchedulerState struct {
	steps, fastForwards, skippedCycles int64
}

// Counters returns the snapshot's counter values (checkpoint
// serialization).
func (s SchedulerState) Counters() (steps, fastForwards, skippedCycles int64) {
	return s.steps, s.fastForwards, s.skippedCycles
}

// NewSchedulerState assembles a scheduler snapshot from decoded counters.
func NewSchedulerState(steps, fastForwards, skippedCycles int64) SchedulerState {
	return SchedulerState{steps: steps, fastForwards: fastForwards, skippedCycles: skippedCycles}
}

// Snapshot captures the scheduler's counters.
func (s *Scheduler) Snapshot() SchedulerState {
	return SchedulerState{steps: s.Steps, fastForwards: s.FastForwards, skippedCycles: s.SkippedCycles}
}

// Restore rewinds the counters to a snapshot.
func (s *Scheduler) Restore(st SchedulerState) {
	s.Steps, s.FastForwards, s.SkippedCycles = st.steps, st.fastForwards, st.skippedCycles
}
