// Package sim provides the deterministic cycle-driven simulation engine
// shared by every timing model in this repository: a cycle clock, an event
// queue for scheduling future work (memory responses, bank service
// completions), and a seeded PRNG.
//
// Determinism is a hard requirement of the whole simulator: the Reunion
// execution model is validated by running a vocal and a mute core over the
// same program and detecting divergence, so the simulation itself must
// never be a source of nondeterminism. Everything here is single-threaded
// and ordered; given the same seed, a run is cycle-exact reproducible.
package sim

import "container/heap"

// Event is a callback scheduled to fire at a specific cycle.
//
// An Event is immutable once scheduled: the queue moves *Event pointers
// between heap slots but never rewrites At, Order or Fn. Checkpointing
// relies on this — EventQueue.Snapshot copies the heap slice and shares
// the Event pointers, so a scheduled callback must also never mutate the
// variables its closure captured at scheduling time (capture values, or
// pointers to components whose state is itself checkpointed).
type Event struct {
	At    int64
	Order int64 // tie-break: schedule order, preserves FIFO among same-cycle events
	Fn    func()
	// Desc is the event's serializable descriptor: a plain-data value a
	// checkpoint encoder can write and a decoder can rebind to a fresh Fn
	// (the closure's captures, reified). Events scheduled without a
	// descriptor cannot cross a process boundary; the checkpoint encoder
	// rejects them.
	Desc any
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].Order < h[j].Order
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// EventQueue schedules callbacks at future cycles and fires them in
// deterministic order (cycle, then insertion order).
type EventQueue struct {
	h     eventHeap
	order int64
	now   int64
}

// NewEventQueue returns an empty queue positioned at cycle 0.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Now returns the current cycle.
func (q *EventQueue) Now() int64 { return q.now }

// At schedules fn to run at the given absolute cycle. Scheduling in the
// past (or present) fires on the next Advance to that cycle; the queue
// clamps to now so callers may schedule "immediately".
func (q *EventQueue) At(cycle int64, fn func()) {
	if cycle < q.now {
		cycle = q.now
	}
	q.order++
	heap.Push(&q.h, &Event{At: cycle, Order: q.order, Fn: fn})
}

// After schedules fn to run delay cycles from now.
func (q *EventQueue) After(delay int64, fn func()) { q.At(q.now+delay, fn) }

// AtD schedules fn at an absolute cycle with a serializable descriptor
// (see Event.Desc).
func (q *EventQueue) AtD(cycle int64, desc any, fn func()) {
	if cycle < q.now {
		cycle = q.now
	}
	q.order++
	heap.Push(&q.h, &Event{At: cycle, Order: q.order, Fn: fn, Desc: desc})
}

// AfterD schedules fn delay cycles from now with a serializable descriptor.
func (q *EventQueue) AfterD(delay int64, desc any, fn func()) { q.AtD(q.now+delay, desc, fn) }

// Advance moves the clock to the given cycle and fires every event due at
// or before it, in order.
func (q *EventQueue) Advance(cycle int64) {
	for len(q.h) > 0 && q.h[0].At <= cycle {
		ev := heap.Pop(&q.h).(*Event)
		if ev.At > q.now {
			q.now = ev.At
		}
		ev.Fn()
	}
	if cycle > q.now {
		q.now = cycle
	}
}

// Pending reports the number of scheduled events not yet fired.
func (q *EventQueue) Pending() int { return len(q.h) }

// EventQueueState is a checkpoint of the queue: the clock, the order
// counter, and the pending events. The Event structs are shared with the
// live queue (they are immutable once scheduled); the slice itself is a
// copy, so later pushes and pops leave the state untouched.
type EventQueueState struct {
	now    int64
	order  int64
	events []*Event
}

// Snapshot captures the queue state. Read-only: the live queue is not
// perturbed.
func (q *EventQueue) Snapshot() EventQueueState {
	return EventQueueState{
		now:    q.now,
		order:  q.order,
		events: append([]*Event(nil), q.h...),
	}
}

// Restore rewinds the queue to a snapshot: the clock, order counter and
// pending-event set become exactly what Snapshot saw. Events scheduled
// after the snapshot are discarded; events that fired since will fire
// again. The state slice is copied out, so one snapshot restores any
// number of times. The heap invariant is positional, so a copy of a valid
// heap slice is itself a valid heap.
func (q *EventQueue) Restore(s EventQueueState) {
	q.now = s.now
	q.order = s.order
	q.h = append(eventHeap(nil), s.events...)
}

// Clock returns the snapshot's cycle and order counter (checkpoint
// serialization).
func (s EventQueueState) Clock() (now, order int64) { return s.now, s.order }

// Events returns the snapshot's pending events in heap-slice order. The
// slice is shared with the state; callers must not mutate it. The order is
// significant: the heap invariant is positional, so a decoder that
// preserves it byte-for-byte reproduces the exact pop order.
func (s EventQueueState) Events() []*Event { return s.events }

// NewEventQueueState assembles a queue snapshot from decoded parts
// (checkpoint deserialization). The events slice must be a valid heap in
// (At, Order) — which it is when it round-trips through Events in order.
func NewEventQueueState(now, order int64, events []*Event) EventQueueState {
	return EventQueueState{now: now, order: order, events: events}
}

// NextAt reports the cycle of the earliest pending event, if any. The
// quiescence-aware kernel uses it to pick a fast-forward target.
func (q *EventQueue) NextAt() (int64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Rand is a SplitMix64 PRNG: tiny, fast, seedable, and fully deterministic.
// It backs workload generation and any randomized choice in the simulator.
type Rand struct{ state uint64 }

// NewRand returns a PRNG seeded with the given value.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64-bit pseudorandom value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudorandom value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudorandom int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a pseudorandom value in [0, 1).
func (r *Rand) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Mix64 is a stateless 64-bit mixing function (the SplitMix64 finalizer).
// It generates the deterministic "arbitrary data" returned by null and
// shared phantom requests on misses: garbage that is reproducible for a
// given (address, salt) so simulations replay exactly.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
