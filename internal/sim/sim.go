// Package sim provides the deterministic cycle-driven simulation engine
// shared by every timing model in this repository: a cycle clock, an event
// queue for scheduling future work (memory responses, bank service
// completions), and a seeded PRNG.
//
// Determinism is a hard requirement of the whole simulator: the Reunion
// execution model is validated by running a vocal and a mute core over the
// same program and detecting divergence, so the simulation itself must
// never be a source of nondeterminism. Everything here is single-threaded
// and ordered; given the same seed, a run is cycle-exact reproducible.
package sim

// Event is a callback scheduled to fire at a specific cycle.
//
// An Event is immutable once scheduled: the queue moves *Event pointers
// between heap slots but never rewrites At, Order or Fn. Checkpointing
// relies on this — EventQueue.Snapshot copies the heap slice and shares
// the Event pointers, so a scheduled callback must also never mutate the
// variables its closure captured at scheduling time (capture values, or
// pointers to components whose state is itself checkpointed).
//
// Fired events are recycled through a per-queue free list, but only when
// no snapshot can possibly hold them: each Event carries the queue
// generation it was scheduled under, Snapshot bumps the generation, and
// Advance returns to the pool only events whose generation is current.
// An Event that predates the latest Snapshot is left for the garbage
// collector, preserving the shared-pointer contract above.
type Event struct {
	At    int64
	Order int64 // tie-break: schedule order, preserves FIFO among same-cycle events
	Fn    func()
	// Desc is the event's serializable descriptor: a plain-data value a
	// checkpoint encoder can write and a decoder can rebind to a fresh Fn
	// (the closure's captures, reified). Events scheduled without a
	// descriptor cannot cross a process boundary; the checkpoint encoder
	// rejects them.
	Desc any
	// run fires descriptor-driven events scheduled with AtR/AfterR; nil
	// for closure events. Fn takes precedence when both are set (the
	// checkpoint decoder rebinds decoded events through Fn).
	run EventRunner
	gen uint64 // queue generation at scheduling time; guards pool reuse
}

// EventRunner is implemented by components that fire events directly
// from their serializable descriptors. Scheduling through AtR/AfterR
// avoids the per-event closure allocation of At/AtD: the runner is an
// interface pair (pointer + itab) copied into the pooled Event, so a
// hot scheduling site allocates only its descriptor. RunEvent must
// treat the descriptor as immutable (snapshots share it, exactly like
// the Event).
type EventRunner interface{ RunEvent(desc any) }

type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].Order < h[j].Order
}

// up and down are the container/heap sift algorithms specialized to
// eventHeap. The specialization matters twice over: it removes the
// interface dispatch on Less/Swap from the hottest loop in the kernel,
// and it reproduces container/heap's exact swap sequence so the heap
// slice layout — which checkpoint serialization preserves positionally —
// is identical to what the generic implementation produced.
func (h eventHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h eventHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// EventQueue schedules callbacks at future cycles and fires them in
// deterministic order (cycle, then insertion order).
type EventQueue struct {
	h     eventHeap
	order int64
	now   int64
	gen   uint64   // bumped by Snapshot; see Event.gen
	free  []*Event // fired events safe to recycle (gen was current at fire time) //reunion:derived
}

// alloc returns a cleared Event, reusing a pooled one when available.
func (q *EventQueue) alloc() *Event {
	if n := len(q.free); n > 0 {
		ev := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		return ev
	}
	return &Event{}
}

// push schedules an assembled event (heap insert + sift up).
func (q *EventQueue) push(ev *Event) {
	q.h = append(q.h, ev)
	q.h.up(len(q.h) - 1)
}

// NewEventQueue returns an empty queue positioned at cycle 0.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Now returns the current cycle.
func (q *EventQueue) Now() int64 { return q.now }

// At schedules fn to run at the given absolute cycle. Scheduling in the
// past (or present) fires on the next Advance to that cycle; the queue
// clamps to now so callers may schedule "immediately".
func (q *EventQueue) At(cycle int64, fn func()) {
	if cycle < q.now {
		cycle = q.now
	}
	q.order++
	ev := q.alloc()
	ev.At, ev.Order, ev.Fn, ev.Desc, ev.gen = cycle, q.order, fn, nil, q.gen
	q.push(ev)
}

// AtR schedules a descriptor-driven event at an absolute cycle: at fire
// time the queue calls run.RunEvent(desc). Equivalent to AtD with a
// closure over (run, desc), minus the closure allocation.
func (q *EventQueue) AtR(cycle int64, desc any, run EventRunner) {
	if cycle < q.now {
		cycle = q.now
	}
	q.order++
	ev := q.alloc()
	ev.At, ev.Order, ev.Desc, ev.run, ev.gen = cycle, q.order, desc, run, q.gen
	ev.Fn = nil
	q.push(ev)
}

// AfterR schedules a descriptor-driven event delay cycles from now.
func (q *EventQueue) AfterR(delay int64, desc any, run EventRunner) { q.AtR(q.now+delay, desc, run) }

// After schedules fn to run delay cycles from now.
func (q *EventQueue) After(delay int64, fn func()) { q.At(q.now+delay, fn) }

// AtD schedules fn at an absolute cycle with a serializable descriptor
// (see Event.Desc).
func (q *EventQueue) AtD(cycle int64, desc any, fn func()) {
	if cycle < q.now {
		cycle = q.now
	}
	q.order++
	ev := q.alloc()
	ev.At, ev.Order, ev.Fn, ev.Desc, ev.gen = cycle, q.order, fn, desc, q.gen
	q.push(ev)
}

// AfterD schedules fn delay cycles from now with a serializable descriptor.
func (q *EventQueue) AfterD(delay int64, desc any, fn func()) { q.AtD(q.now+delay, desc, fn) }

// Advance moves the clock to the given cycle and fires every event due at
// or before it, in order.
func (q *EventQueue) Advance(cycle int64) {
	for len(q.h) > 0 && q.h[0].At <= cycle {
		n := len(q.h) - 1
		ev := q.h[0]
		q.h[0], q.h[n] = q.h[n], nil
		q.h = q.h[:n]
		q.h.down(0, n)
		if ev.At > q.now {
			q.now = ev.At
		}
		if ev.Fn != nil {
			ev.Fn()
		} else {
			ev.run.RunEvent(ev.Desc)
		}
		// Recycle only events no snapshot can hold. The generation is
		// re-checked after the callback runs: a callback that snapshots
		// the queue bumps gen and thereby retires every already-scheduled
		// event, including this one.
		if ev.gen == q.gen {
			ev.Fn, ev.Desc, ev.run = nil, nil, nil
			q.free = append(q.free, ev)
		}
	}
	if cycle > q.now {
		q.now = cycle
	}
}

// Pending reports the number of scheduled events not yet fired.
func (q *EventQueue) Pending() int { return len(q.h) }

// EventQueueState is a checkpoint of the queue: the clock, the order
// counter, and the pending events. The Event structs are shared with the
// live queue (they are immutable once scheduled); the slice itself is a
// copy, so later pushes and pops leave the state untouched.
type EventQueueState struct {
	now    int64
	order  int64
	events []*Event
}

// Snapshot captures the queue state. Read-only with respect to
// observable queue state: the clock, order counter and pending events
// are not perturbed. It does bump the queue's pool generation, retiring
// every currently-scheduled event from recycling so the shared *Event
// pointers stay immutable for the lifetime of the snapshot.
func (q *EventQueue) Snapshot() EventQueueState {
	s := EventQueueState{
		now:    q.now,
		order:  q.order,
		events: append([]*Event(nil), q.h...),
	}
	q.gen++
	return s
}

// Restore rewinds the queue to a snapshot: the clock, order counter and
// pending-event set become exactly what Snapshot saw. Events scheduled
// after the snapshot are discarded; events that fired since will fire
// again. The state slice is copied out, so one snapshot restores any
// number of times. The heap invariant is positional, so a copy of a valid
// heap slice is itself a valid heap.
func (q *EventQueue) Restore(s EventQueueState) {
	q.now = s.now
	q.order = s.order
	// Events scheduled since the last Snapshot (current generation) are
	// about to become unreachable and, by construction, appear in no
	// snapshot — recycle them instead of leaking them to the GC.
	for _, ev := range q.h {
		if ev.gen == q.gen {
			ev.Fn, ev.Desc, ev.run = nil, nil, nil
			q.free = append(q.free, ev)
		}
	}
	old := q.h
	q.h = append(q.h[:0], s.events...)
	for i := len(q.h); i < len(old); i++ {
		old[i] = nil
	}
	// The installed events are shared with the state object (which may be
	// restored again, or may be a decoded checkpoint whose generation
	// stamps mean nothing to this queue): retire them all from recycling.
	q.gen++
}

// Clock returns the snapshot's cycle and order counter (checkpoint
// serialization).
func (s EventQueueState) Clock() (now, order int64) { return s.now, s.order }

// Events returns the snapshot's pending events in heap-slice order. The
// slice is shared with the state; callers must not mutate it. The order is
// significant: the heap invariant is positional, so a decoder that
// preserves it byte-for-byte reproduces the exact pop order.
func (s EventQueueState) Events() []*Event { return s.events }

// NewEventQueueState assembles a queue snapshot from decoded parts
// (checkpoint deserialization). The events slice must be a valid heap in
// (At, Order) — which it is when it round-trips through Events in order.
func NewEventQueueState(now, order int64, events []*Event) EventQueueState {
	return EventQueueState{now: now, order: order, events: events}
}

// NextAt reports the cycle of the earliest pending event, if any. The
// quiescence-aware kernel uses it to pick a fast-forward target.
func (q *EventQueue) NextAt() (int64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Rand is a SplitMix64 PRNG: tiny, fast, seedable, and fully deterministic.
// It backs workload generation and any randomized choice in the simulator.
type Rand struct{ state uint64 }

// NewRand returns a PRNG seeded with the given value.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64-bit pseudorandom value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudorandom value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudorandom int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a pseudorandom value in [0, 1).
func (r *Rand) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Mix64 is a stateless 64-bit mixing function (the SplitMix64 finalizer).
// It generates the deterministic "arbitrary data" returned by null and
// shared phantom requests on misses: garbage that is reproducible for a
// given (address, salt) so simulations replay exactly.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
