// Package bin is the little-endian binary codec underneath checkpoint
// serialization: a sticky-error writer/reader pair over fixed-width
// integers, varints, bools and byte strings.
//
// The writer produces fully deterministic bytes — no maps are encoded
// here; callers sort keys before writing — so the same machine state
// always serializes to the same blob, which is what makes golden-file
// format pinning and content-addressed storage meaningful.
//
// The reader is sticky on first error and hardened against hostile
// input: every length is bounded by the bytes that actually remain, so
// truncated or bit-flipped blobs produce errors, never panics or huge
// allocations (the checkpoint fuzz target leans on this).
package bin

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Writer accumulates little-endian binary output. The zero value is ready
// to use.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated output.
func (w *Writer) Bytes() []byte { return w.buf }

// Raw appends bytes verbatim (magic numbers, checksums over prior output).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool writes a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

// U16 writes a fixed-width little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 writes a fixed-width little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 writes a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 writes a fixed-width little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as a fixed-width int64 (indices, counts, small enums).
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Uvarint writes an unsigned varint (lengths, counts).
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// F64 writes a float64 by bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes64 writes a length-prefixed byte string.
func (w *Writer) Bytes64(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes64([]byte(s)) }

// ErrTruncated reports input that ended before a declared field.
var ErrTruncated = errors.New("bin: truncated input")

// Reader consumes little-endian binary input. The first decode error
// sticks: every later call returns the zero value, and Err reports it.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Fail records an error (if none is recorded yet) and returns it.
func (r *Reader) Fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	return r.err
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool; any byte other than 0 or 1 is an error.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.err = errors.New("bin: invalid bool byte")
		}
		return false
	}
}

// U16 reads a fixed-width little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a fixed-width little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a fixed-width little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = ErrTruncated
		return 0
	}
	r.off += n
	return v
}

// F64 reads a float64 by bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Len reads a length written as a varint and bounds-checks it against
// elemSize-wide elements actually remaining in the input, so a corrupted
// length can neither panic a slice make nor allocate gigabytes. elemSize 1
// bounds raw byte strings; larger sizes bound typed arrays.
func (r *Reader) Len(elemSize int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if v > uint64(r.Remaining()/elemSize) {
		r.err = fmt.Errorf("bin: length %d exceeds remaining input", v)
		return 0
	}
	return int(v)
}

// Bytes64 reads a length-prefixed byte string (copied out of the input).
func (r *Reader) Bytes64() []byte {
	n := r.Len(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes64()) }
