package trace

import (
	"strings"
	"testing"
)

func TestRecordAndDump(t *testing.T) {
	r := New(8)
	r.Add(1, 0, Commit, "a")
	r.Add(2, 1, Recovery, "b")
	ev := r.Events()
	if len(ev) != 2 || ev[0].Msg != "a" || ev[1].Msg != "b" {
		t.Fatalf("events %v", ev)
	}
	d := r.Dump()
	if !strings.Contains(d, "recovery") || !strings.Contains(d, "core1") {
		t.Fatalf("dump: %s", d)
	}
	if r.Len() != 2 || r.Recorded != 2 {
		t.Fatal("counters")
	}
}

func TestRingWrap(t *testing.T) {
	r := New(4)
	for i := int64(0); i < 10; i++ {
		r.Add(i, 0, Commit, "x")
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("len %d", len(ev))
	}
	// Chronological order: cycles 6,7,8,9.
	for i, e := range ev {
		if e.Cycle != int64(6+i) {
			t.Fatalf("order: %v", ev)
		}
	}
	if r.Len() != 4 {
		t.Fatal("len after wrap")
	}
}

func TestFilter(t *testing.T) {
	r := New(8)
	r.SetFilter(Recovery)
	r.Add(1, 0, Commit, "dropped")
	r.Addf(2, 0, Recovery, "kept %d", 42)
	ev := r.Events()
	if len(ev) != 1 || ev[0].Msg != "kept 42" {
		t.Fatalf("filter: %v", ev)
	}
	if r.Dropped != 1 {
		t.Fatalf("dropped=%d", r.Dropped)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Ring
	if r.Enabled(Commit) {
		t.Fatal("nil ring enabled")
	}
	r.Add(1, 0, Commit, "x") // must not panic
	r.Addf(1, 0, Commit, "x")
	if r.Events() != nil || r.Len() != 0 {
		t.Fatal("nil ring contents")
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	r := New(0)
	r.Add(1, 0, Custom, "x")
	if r.Len() != 1 {
		t.Fatal("capacity clamp")
	}
}

func TestCategoryNames(t *testing.T) {
	if Commit.String() != "commit" || Category(99).String() != "?" {
		t.Fatal("names")
	}
}
