package trace

import (
	"strings"
	"testing"
)

func TestRecordAndDump(t *testing.T) {
	r := New(8)
	r.Add(1, 0, Commit, "a")
	r.Add(2, 1, Recovery, "b")
	ev := r.Events()
	if len(ev) != 2 || ev[0].Msg != "a" || ev[1].Msg != "b" {
		t.Fatalf("events %v", ev)
	}
	d := r.Dump()
	if !strings.Contains(d, "recovery") || !strings.Contains(d, "core1") {
		t.Fatalf("dump: %s", d)
	}
	if r.Len() != 2 || r.Recorded != 2 {
		t.Fatal("counters")
	}
}

func TestRingWrap(t *testing.T) {
	r := New(4)
	for i := int64(0); i < 10; i++ {
		r.Add(i, 0, Commit, "x")
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("len %d", len(ev))
	}
	// Chronological order: cycles 6,7,8,9.
	for i, e := range ev {
		if e.Cycle != int64(6+i) {
			t.Fatalf("order: %v", ev)
		}
	}
	if r.Len() != 4 {
		t.Fatal("len after wrap")
	}
}

func TestFilter(t *testing.T) {
	r := New(8)
	r.SetFilter(Recovery)
	r.Add(1, 0, Commit, "dropped")
	r.Addf(2, 0, Recovery, "kept %d", 42)
	ev := r.Events()
	if len(ev) != 1 || ev[0].Msg != "kept 42" {
		t.Fatalf("filter: %v", ev)
	}
	if r.Dropped != 1 {
		t.Fatalf("dropped=%d", r.Dropped)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Ring
	if r.Enabled(Commit) {
		t.Fatal("nil ring enabled")
	}
	r.Add(1, 0, Commit, "x") // must not panic
	r.Addf(1, 0, Commit, "x")
	if r.Events() != nil || r.Len() != 0 {
		t.Fatal("nil ring contents")
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	r := New(0)
	r.Add(1, 0, Custom, "x")
	if r.Len() != 1 {
		t.Fatal("capacity clamp")
	}
}

func TestCategoryNames(t *testing.T) {
	if Commit.String() != "commit" || Category(99).String() != "?" {
		t.Fatal("names")
	}
}

func TestDumpOrderingAfterWrap(t *testing.T) {
	r := New(3)
	for i := int64(0); i < 5; i++ {
		r.Addf(i, int(i), Commit, "ev%d", i)
	}
	// Only the newest 3 survive, dumped oldest-first / newest-last.
	lines := strings.Split(strings.TrimRight(r.Dump(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("dump lines: %q", lines)
	}
	for i, want := range []string{"ev2", "ev3", "ev4"} {
		if !strings.Contains(lines[i], want) {
			t.Fatalf("line %d = %q, want %s", i, lines[i], want)
		}
	}
	if r.Recorded != 5 {
		t.Fatalf("recorded=%d", r.Recorded)
	}
}

func TestMultiCategoryFilter(t *testing.T) {
	r := New(8)
	r.SetFilter(Recovery, Compare)
	r.Add(1, 0, Commit, "no")
	r.Add(2, 0, Recovery, "yes")
	r.Add(3, 0, Compare, "yes")
	r.Add(4, 0, Memory, "no")
	r.Add(5, 0, Custom, "no")
	if r.Len() != 2 || r.Dropped != 3 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped)
	}
	for _, c := range []Category{Recovery, Compare} {
		if !r.Enabled(c) {
			t.Fatalf("%v should be enabled", c)
		}
	}
	for _, c := range []Category{Commit, Memory, Custom} {
		if r.Enabled(c) {
			t.Fatalf("%v should be disabled", c)
		}
	}
}

// tattleStringer fails the test if its String method ever runs.
type tattleStringer struct{ t *testing.T }

func (s tattleStringer) String() string {
	s.t.Error("String() called on an argument of a disabled Addf")
	return ""
}

func TestAddfDoesNotFormatWhenDisabled(t *testing.T) {
	r := New(8)
	r.SetFilter(Recovery)
	r.Addf(1, 0, Commit, "%v", tattleStringer{t})
	var nilRing *Ring
	nilRing.Addf(1, 0, Commit, "%v", tattleStringer{t})
}

func TestGatedAddfAllocatesNothingWhenDisabled(t *testing.T) {
	// The idiom used at hot call sites (e.g. the pair compare-mismatch
	// path): gating on Enabled must keep the disabled cost at zero
	// allocations — no variadic boxing, no formatting.
	var nilRing *Ring
	filtered := New(8)
	filtered.SetFilter(Recovery)
	big := struct{ a, b, c int64 }{1, 2, 3}
	for name, r := range map[string]*Ring{"nil": nilRing, "filtered": filtered} {
		allocs := testing.AllocsPerRun(100, func() {
			if r.Enabled(Commit) {
				r.Addf(1, 0, Commit, "ev %d %v", big.a, big)
			}
		})
		if allocs != 0 {
			t.Errorf("%s ring: %v allocs/op for a gated disabled Addf, want 0", name, allocs)
		}
	}
}
