// Package trace provides a bounded, allocation-light event recorder for
// simulator debugging: a ring buffer of timestamped events that can be
// dumped when something goes wrong (a wedge, a failed assertion, an
// unexpected recovery storm). Tracing costs nothing when disabled.
package trace

import (
	"fmt"
	"strings"
)

// Category classifies events for filtering.
type Category uint8

// Event categories.
const (
	Commit Category = iota
	Recovery
	Compare
	Memory
	Custom
	numCategories
)

var catNames = [numCategories]string{"commit", "recovery", "compare", "memory", "custom"}

// String names the category.
func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return "?"
}

// Event is one recorded occurrence.
type Event struct {
	Cycle int64
	Core  int
	Cat   Category
	Msg   string
}

// Ring is a fixed-capacity event recorder. The zero value is disabled;
// use New to create an enabled ring.
type Ring struct {
	events  []Event
	next    int
	wrapped bool
	filter  uint32 // bitmask of enabled categories

	Recorded int64
	Dropped  int64
}

// New returns a ring holding the most recent capacity events, recording
// every category.
func New(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{events: make([]Event, capacity), filter: ^uint32(0)}
}

// SetFilter restricts recording to the given categories.
func (r *Ring) SetFilter(cats ...Category) {
	r.filter = 0
	for _, c := range cats {
		r.filter |= 1 << c
	}
}

// Enabled reports whether the ring records the category (nil-safe).
func (r *Ring) Enabled(c Category) bool {
	return r != nil && len(r.events) > 0 && r.filter&(1<<c) != 0
}

// Add records an event (nil-safe no-op when disabled).
func (r *Ring) Add(cycle int64, core int, cat Category, msg string) {
	if !r.Enabled(cat) {
		if r != nil {
			r.Dropped++
		}
		return
	}
	r.events[r.next] = Event{Cycle: cycle, Core: core, Cat: cat, Msg: msg}
	r.next++
	r.Recorded++
	if r.next == len(r.events) {
		r.next = 0
		r.wrapped = true
	}
}

// Addf records a formatted event, formatting only when enabled.
func (r *Ring) Addf(cycle int64, core int, cat Category, format string, args ...any) {
	if !r.Enabled(cat) {
		if r != nil {
			r.Dropped++
		}
		return
	}
	r.Add(cycle, core, cat, fmt.Sprintf(format, args...))
}

// Events returns the recorded events in chronological order.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dump formats the ring's contents, newest last.
func (r *Ring) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		fmt.Fprintf(&b, "[%10d] core%-2d %-8s %s\n", e.Cycle, e.Core, e.Cat, e.Msg)
	}
	return b.String()
}

// Len reports how many events are currently held.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	if r.wrapped {
		return len(r.events)
	}
	return r.next
}
