// Package fingerprint implements the architectural-state fingerprints used
// for output comparison (Smolens et al., ASPLOS 2004, extended by the
// Reunion paper §4.3).
//
// A fingerprint is a hash — here CRC-16-CCITT — of the architectural
// updates an instruction produces: register writes, branch targets, store
// addresses and store values. Two cores exchanging a 16-bit fingerprint
// per comparison interval compress output-comparison bandwidth by orders
// of magnitude relative to comparing every result bit, at an aliasing
// probability of at most 2^-16.
//
// For wide superscalar retirement the paper adds a two-stage compression
// scheme: space-compressing parity trees fold the raw per-cycle update
// bits (which can exceed what a parallel CRC can consume in one clock)
// down to the CRC width in one stage, then the CRC compresses in time.
// Parity trees double the aliasing probability, bounding it by 2^-(N-1)
// for an N-bit CRC. Both the direct and the two-stage generators are
// implemented; Hash selects between them, and the aliasing analysis is
// validated by tests.
package fingerprint

// CCITT is the CRC-16-CCITT polynomial (x^16 + x^12 + x^5 + 1).
const CCITT = 0x1021

var crcTable = buildTable(CCITT)

func buildTable(poly uint16) *[256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return &t
}

func crcByte(crc uint16, b byte) uint16 { return crc<<8 ^ crcTable[byte(crc>>8)^b] }

func crcWord(crc uint16, w uint64) uint16 {
	for s := 56; s >= 0; s -= 8 {
		crc = crcByte(crc, byte(w>>uint(s)))
	}
	return crc
}

// Mode selects the compression pipeline.
type Mode uint8

// Compression modes.
const (
	// Direct feeds every update word straight into the CRC (feasible only
	// for narrow retirement; the reference for coverage).
	Direct Mode = iota
	// TwoStage folds each cycle's update words through a parity tree down
	// to 16 bits before the CRC consumes them (feasible for wide
	// retirement; at most doubles the aliasing probability).
	TwoStage
)

// String names the mode.
func (m Mode) String() string {
	if m == TwoStage {
		return "two-stage"
	}
	return "direct"
}

// Gen accumulates architectural updates into a fingerprint over a
// comparison interval.
type Gen struct {
	mode Mode
	crc  uint16
}

// NewGen returns a generator in the given mode.
func NewGen(mode Mode) *Gen { return &Gen{mode: mode, crc: 0xffff} }

// parityFold16 space-compresses a 64-bit word to 16 bits with XOR parity
// trees (four 16-bit lanes folded together), the single-cycle stage the
// paper borrows from circuit-test response compaction. Each update word is
// folded separately and then consumed by the time-compressing CRC — the
// parity stage must never XOR distinct update words together, or
// correlated updates (a load's destination record and its value) would
// cancel systematically rather than alias with probability 2^-(N-1).
func parityFold16(w uint64) uint16 {
	return uint16(w) ^ uint16(w>>16) ^ uint16(w>>32) ^ uint16(w>>48)
}

// Add absorbs one 64-bit architectural update word.
func (g *Gen) Add(w uint64) {
	switch g.mode {
	case Direct:
		g.crc = crcWord(g.crc, w)
	case TwoStage:
		f := parityFold16(w)
		g.crc = crcByte(g.crc, byte(f>>8))
		g.crc = crcByte(g.crc, byte(f))
	}
}

// Instruction absorbs every architectural update of one retired
// instruction: destination register index and result value for register
// writers, taken/target for branches, and address/value for stores.
func (g *Gen) Instruction(wroteReg bool, rd uint8, result int64,
	isBranch, taken bool, target int64,
	isStore bool, storeAddr uint64, storeData uint64) {
	if wroteReg {
		g.Add(uint64(rd)<<56 | uint64(result)&0x00ffffffffffffff)
		g.Add(uint64(result))
	}
	if isBranch {
		tk := uint64(0)
		if taken {
			tk = 1
		}
		g.Add(tk<<63 | uint64(target)&0x7fffffffffffffff)
	}
	if isStore {
		g.Add(storeAddr)
		g.Add(storeData)
	}
}

// Value returns the fingerprint accumulated so far.
func (g *Gen) Value() uint16 { return g.crc }

// GenState is a checkpoint of the generator (the accumulated CRC; the
// mode is fixed at construction).
type GenState struct{ crc uint16 }

// CRC returns the snapshot's accumulated CRC (checkpoint serialization).
func (s GenState) CRC() uint16 { return s.crc }

// NewGenState assembles a generator snapshot from a decoded CRC.
func NewGenState(crc uint16) GenState { return GenState{crc: crc} }

// Snapshot captures the generator state. Read-only.
func (g *Gen) Snapshot() GenState { return GenState{crc: g.crc} }

// Restore rewrites the generator from a snapshot.
func (g *Gen) Restore(s GenState) { g.crc = s.crc }

// Reset begins a new comparison interval.
func (g *Gen) Reset() { g.crc = 0xffff }

// AliasBound returns the design aliasing-probability bound for the mode
// with a 16-bit CRC: 2^-16 direct, 2^-15 two-stage (paper §4.3).
func AliasBound(m Mode) float64 {
	if m == TwoStage {
		return 1.0 / (1 << 15)
	}
	return 1.0 / (1 << 16)
}
