package fingerprint

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	for _, mode := range []Mode{Direct, TwoStage} {
		a, b := NewGen(mode), NewGen(mode)
		for i := uint64(0); i < 100; i++ {
			a.Add(i * 0x9e37)
			b.Add(i * 0x9e37)
		}
		if a.Value() != b.Value() {
			t.Fatalf("%v: same stream, different fingerprints", mode)
		}
	}
}

func TestReset(t *testing.T) {
	g := NewGen(Direct)
	empty := g.Value()
	g.Add(123)
	if g.Value() == empty {
		t.Fatal("Add had no effect")
	}
	g.Reset()
	if g.Value() != empty {
		t.Fatal("Reset did not restore initial state")
	}
}

func TestSingleBitSensitivityDirect(t *testing.T) {
	// CRC-16 detects any single-bit difference in the stream.
	for bit := uint(0); bit < 64; bit++ {
		a, b := NewGen(Direct), NewGen(Direct)
		a.Add(0x1234_5678_9abc_def0)
		b.Add(0x1234_5678_9abc_def0 ^ 1<<bit)
		if a.Value() == b.Value() {
			t.Fatalf("direct mode aliased a single-bit flip at bit %d", bit)
		}
	}
}

func TestTwoStageSingleBitSensitivity(t *testing.T) {
	// A single-bit flip survives one parity fold (odd number of flipped
	// bits in the fold), so two-stage must also detect any single flip.
	for bit := uint(0); bit < 64; bit++ {
		a, b := NewGen(TwoStage), NewGen(TwoStage)
		a.Add(0xdead_beef_cafe_f00d)
		b.Add(0xdead_beef_cafe_f00d ^ 1<<bit)
		if a.Value() == b.Value() {
			t.Fatalf("two-stage aliased a single-bit flip at bit %d", bit)
		}
	}
}

// Regression: the two-stage parity fold must never XOR distinct update
// words together — a load's (rd|result) word and its result word would
// cancel systematically. This is the exact divergence-hiding bug the
// simulator bring-up exposed.
func TestTwoStageNoCrossWordCancellation(t *testing.T) {
	mk := func(result int64) uint16 {
		g := NewGen(TwoStage)
		g.Instruction(true, 11, result, false, false, 0, false, 0, 0)
		return g.Value()
	}
	if mk(0) == mk(1) {
		t.Fatal("load results 0 and 1 produce identical two-stage fingerprints")
	}
	// A broad sample: distinct results should essentially never collide.
	collisions := 0
	base := mk(0)
	for v := int64(1); v < 2000; v++ {
		if mk(v) == base {
			collisions++
		}
	}
	if collisions > 1 {
		t.Fatalf("%d collisions against result 0 in 2000 samples", collisions)
	}
}

func TestInstructionFieldsAllMatter(t *testing.T) {
	type args struct {
		wrote  bool
		rd     uint8
		result int64
		br     bool
		taken  bool
		target int64
		st     bool
		stAddr uint64
		stData uint64
	}
	ref := args{true, 3, 42, true, true, 7, true, 0x1000, 99}
	variants := []args{
		{true, 4, 42, true, true, 7, true, 0x1000, 99},  // rd
		{true, 3, 43, true, true, 7, true, 0x1000, 99},  // result
		{true, 3, 42, true, false, 8, true, 0x1000, 99}, // taken+target
		{true, 3, 42, true, true, 8, true, 0x1000, 99},  // target
		{true, 3, 42, true, true, 7, true, 0x1008, 99},  // store addr
		{true, 3, 42, true, true, 7, true, 0x1000, 100}, // store data
		{false, 3, 42, true, true, 7, true, 0x1000, 99}, // wrote flag
		{true, 3, 42, false, true, 7, true, 0x1000, 99}, // branch flag
		{true, 3, 42, true, true, 7, false, 0x1000, 99}, // store flag
	}
	fp := func(m Mode, a args) uint16 {
		g := NewGen(m)
		g.Instruction(a.wrote, a.rd, a.result, a.br, a.taken, a.target, a.st, a.stAddr, a.stData)
		return g.Value()
	}
	for _, m := range []Mode{Direct, TwoStage} {
		base := fp(m, ref)
		for i, v := range variants {
			if fp(m, v) == base {
				t.Errorf("%v: variant %d did not change the fingerprint", m, i)
			}
		}
	}
}

func TestCRC16KnownValue(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1 (init 0xFFFF, poly 0x1021).
	crc := uint16(0xffff)
	for _, b := range []byte("123456789") {
		crc = crcByte(crc, b)
	}
	if crc != 0x29b1 {
		t.Fatalf("CRC-16/CCITT-FALSE check value: got %#04x want 0x29b1", crc)
	}
}

func TestAliasBound(t *testing.T) {
	if AliasBound(Direct) != 1.0/(1<<16) {
		t.Fatal("direct alias bound")
	}
	if AliasBound(TwoStage) != 1.0/(1<<15) {
		t.Fatal("two-stage alias bound (parity trees double aliasing)")
	}
	if Direct.String() != "direct" || TwoStage.String() != "two-stage" {
		t.Fatal("mode names")
	}
}

// Property: equal update streams give equal fingerprints; a random
// single-word perturbation gives a different fingerprint except with
// roughly the design aliasing probability.
func TestAliasRateEmpirical(t *testing.T) {
	for _, m := range []Mode{Direct, TwoStage} {
		aliases := 0
		const trials = 20000
		f := func(words []uint64, flipIdx uint16, flipBits uint64) bool {
			if len(words) == 0 || flipBits == 0 {
				return true
			}
			a, b := NewGen(m), NewGen(m)
			idx := int(flipIdx) % len(words)
			for i, w := range words {
				a.Add(w)
				if i == idx {
					w ^= flipBits
				}
				b.Add(w)
			}
			if a.Value() == b.Value() {
				aliases++
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: trials}); err != nil {
			t.Fatal(err)
		}
		// Expected aliases ~ trials * 2^-16 (or 2^-15): single digits.
		// Allow generous slack; catching systematic aliasing is the point.
		if aliases > 40 {
			t.Fatalf("%v: %d aliases in %d corrupted streams", m, aliases, trials)
		}
	}
}

func TestParityFold(t *testing.T) {
	if parityFold16(0) != 0 {
		t.Fatal("fold of zero")
	}
	if parityFold16(0x0001_0001_0001_0001) != 0 {
		t.Fatal("even lane bits must cancel")
	}
	if parityFold16(0x0001_0001_0001_0000) != 1 {
		t.Fatal("odd lane bits must survive")
	}
}
