// Package cliconf is the shared flag-parsing and validation layer of
// the reunion CLIs. Five commands (sweep, inject, bench, merge, and
// the coordinator worker modes) accept overlapping flag families —
// axis CSVs with duplicate-value warnings and fail-fast unknown-value
// listing, the telemetry trio, the checkpoint-store pair, and the
// -shard/-journal/-resume cluster — and before this package each CLI
// carried its own copy, which is exactly how validation rules drift
// apart. The parsers here are the single source of those rules; the
// CLIs keep only their flag registration and exit-code choreography.
package cliconf

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"reunion"
	"reunion/internal/ckptstore"
	"reunion/internal/obs"
	"reunion/internal/sweep"
	"reunion/internal/workload"
)

// SplitCSV splits a comma-separated flag value, trimming whitespace and
// dropping empty fields.
func SplitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// Int64s parses a CSV of int64s.
func Int64s(s string) ([]int64, error) {
	var out []int64
	for _, f := range SplitCSV(s) {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Uint64s parses a CSV of uint64s (0x… accepted).
func Uint64s(s string) ([]uint64, error) {
	var out []uint64
	for _, f := range SplitCSV(s) {
		v, err := strconv.ParseUint(f, 0, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseRange parses "lo-hi" (inclusive) or a single value "n" (= n-n);
// the empty string yields the defaults.
func ParseRange(s string, defLo, defHi int64) (lo, hi int64, err error) {
	if s == "" {
		return defLo, defHi, nil
	}
	parts := strings.SplitN(s, "-", 2)
	lo, err = strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return 0, 0, err
	}
	hi = lo
	if len(parts) == 2 {
		hi, err = strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return 0, 0, err
		}
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("range %q is empty", s)
	}
	return lo, hi, nil
}

// Kernel resolves a -kernel flag value. Both kernels are bit-identical
// in results (CI byte-compares their journals), so the choice never
// enters a run fingerprint.
func Kernel(name string) (reunion.Kernel, error) {
	switch name {
	case "fastforward", "fast-forward":
		return reunion.KernelFastForward, nil
	case "naive":
		return reunion.KernelNaive, nil
	}
	return 0, fmt.Errorf("unknown kernel %q (valid: fastforward, naive)", name)
}

// dedupe drops duplicate axis values with a warning to w — a
// duplicated seed or latency would silently run every matching cell
// twice and skew class averages.
func dedupe[V comparable](w io.Writer, tool, axis string, vals []V, format func(V) string) []V {
	return sweep.Dedupe(w, tool, axis, vals, format)
}

// Modes parses an execution-model axis CSV. allowStrict selects the
// sweep form; inject passes false, because its strict oracle simulates
// comparison timing only and a fault campaign against it would
// mislabel the unprotected substrate.
func Modes(w io.Writer, tool, csv string, allowStrict bool) ([]reunion.Mode, error) {
	var ms []reunion.Mode
	for _, name := range SplitCSV(csv) {
		switch name {
		case "non-redundant":
			ms = append(ms, reunion.ModeNonRedundant)
		case "strict":
			if !allowStrict {
				return nil, fmt.Errorf("mode strict models comparison timing only (no simulated partner); inject supports reunion,non-redundant")
			}
			ms = append(ms, reunion.ModeStrict)
		case "reunion":
			ms = append(ms, reunion.ModeReunion)
		default:
			if !allowStrict {
				return nil, fmt.Errorf("unknown mode %q (valid: reunion, non-redundant)", name)
			}
			return nil, fmt.Errorf("unknown mode %q (valid: non-redundant, strict, reunion)", name)
		}
	}
	return dedupe(w, tool, "mode", ms, reunion.Mode.String), nil
}

// Phantoms parses a phantom-strength axis CSV.
func Phantoms(w io.Writer, tool, csv string) ([]reunion.Phantom, error) {
	var phs []reunion.Phantom
	for _, name := range SplitCSV(csv) {
		switch name {
		case "global":
			phs = append(phs, reunion.PhantomGlobal)
		case "shared":
			phs = append(phs, reunion.PhantomShared)
		case "null":
			phs = append(phs, reunion.PhantomNull)
		default:
			return nil, fmt.Errorf("unknown phantom strength %q (valid: global, shared, null)", name)
		}
	}
	return dedupe(w, tool, "phantom", phs, reunion.Phantom.String), nil
}

// TLBs parses a TLB-discipline axis CSV.
func TLBs(w io.Writer, tool, csv string) ([]reunion.TLBMode, error) {
	var ts []reunion.TLBMode
	for _, name := range SplitCSV(csv) {
		switch name {
		case "hardware":
			ts = append(ts, reunion.TLBHardware)
		case "software":
			ts = append(ts, reunion.TLBSoftware)
		default:
			return nil, fmt.Errorf("unknown TLB discipline %q (valid: hardware, software)", name)
		}
	}
	return dedupe(w, tool, "tlb", ts, reunion.TLBMode.String), nil
}

// Consistencies parses a memory-consistency axis CSV.
func Consistencies(w io.Writer, tool, csv string) ([]reunion.Consistency, error) {
	var cs []reunion.Consistency
	for _, name := range SplitCSV(csv) {
		switch name {
		case "tso":
			cs = append(cs, reunion.TSO)
		case "sc":
			cs = append(cs, reunion.SC)
		default:
			return nil, fmt.Errorf("unknown consistency model %q (valid: tso, sc)", name)
		}
	}
	return dedupe(w, tool, "consistency", cs, reunion.ConsistencyName), nil
}

// Workloads parses a workload axis CSV ("all" = the full suite),
// listing every valid name on an unknown value.
func Workloads(w io.Writer, tool, csv string) ([]workload.Params, error) {
	var ps []workload.Params
	if csv == "all" {
		ps = workload.Suite()
	} else {
		for _, name := range SplitCSV(csv) {
			p, ok := workload.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown workload %q (valid: %s, or 'all')",
					name, strings.Join(workload.Names(), ", "))
			}
			ps = append(ps, p)
		}
	}
	return dedupe(w, tool, "workload", ps, func(p workload.Params) string { return p.Name }), nil
}

// Seeds parses a workload-seed axis CSV.
func Seeds(w io.Writer, tool, csv string) ([]uint64, error) {
	sds, err := Uint64s(csv)
	if err != nil {
		return nil, err
	}
	return dedupe(w, tool, "seed", sds, func(s uint64) string { return strconv.FormatUint(s, 10) }), nil
}

// Int64Axis parses a CSV of int64 axis values with dedupe warnings
// under the given axis name (latency, interval, …).
func Int64Axis(w io.Writer, tool, axis, csv string) ([]int64, error) {
	vals, err := Int64s(csv)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", axis, err)
	}
	return dedupe(w, tool, axis, vals, func(v int64) string { return strconv.FormatInt(v, 10) }), nil
}

// OpenCkptStore resolves the -ckpt-store/-ckpt-url flag pair into a
// checkpoint-store backend, or nil when neither is set.
func OpenCkptStore(dir, url string) (ckptstore.Store, error) {
	switch {
	case dir != "" && url != "":
		return nil, errors.New("-ckpt-store and -ckpt-url are mutually exclusive")
	case dir != "":
		return ckptstore.NewDisk(dir)
	case url != "":
		return ckptstore.NewClient(url), nil
	}
	return nil, nil
}

// CkptFlags is the shared checkpoint-store flag pair.
type CkptFlags struct {
	Dir, URL *string
}

// RegisterCkpt registers -ckpt-store/-ckpt-url on fs.
func RegisterCkpt(fs *flag.FlagSet) *CkptFlags {
	return &CkptFlags{
		Dir: fs.String("ckpt-store", "", "directory of a shared warm-checkpoint store (content-addressed; written and read in place)"),
		URL: fs.String("ckpt-url", "", "base URL of a reunion-ckptd checkpoint server (mutually exclusive with -ckpt-store)"),
	}
}

// Open resolves the pair (see OpenCkptStore).
func (c *CkptFlags) Open() (ckptstore.Store, error) { return OpenCkptStore(*c.Dir, *c.URL) }

// ObsFlags is the shared telemetry flag family. Telemetry is a pure
// observer everywhere these flags appear: results and journal bytes
// are byte-identical with or without them.
type ObsFlags struct {
	TraceOut, MetricsOut *string
	HeartbeatEvery       *time.Duration
}

// RegisterObs registers -trace-out/-metrics-out on fs.
func RegisterObs(fs *flag.FlagSet) *ObsFlags {
	return &ObsFlags{
		TraceOut:   fs.String("trace-out", "", "write spans as Chrome trace-event JSON to this file at exit ('-' = stdout; open in Perfetto)"),
		MetricsOut: fs.String("metrics-out", "", "write metrics in Prometheus text format to this file at exit ('-' = stdout)"),
	}
}

// WithHeartbeat additionally registers -heartbeat for the CLIs with a
// progress loop.
func (o *ObsFlags) WithHeartbeat(fs *flag.FlagSet) *ObsFlags {
	o.HeartbeatEvery = fs.Duration("heartbeat", 0, "print a progress heartbeat (done/total, rate, ETA, lag) to stderr at this interval (0 = off)")
	return o
}

// Scope builds the run's observability scope from the flags.
func (o *ObsFlags) Scope() obs.Scope { return obs.NewScope(*o.TraceOut, *o.MetricsOut) }

// Heartbeat builds the stderr heartbeat, or nil when the flag is off
// (obs.Heartbeat is nil-safe).
func (o *ObsFlags) Heartbeat(label string, total int64) *obs.Heartbeat {
	if o.HeartbeatEvery == nil || *o.HeartbeatEvery <= 0 {
		return nil
	}
	return &obs.Heartbeat{Label: label, Total: total, Every: *o.HeartbeatEvery, W: os.Stderr}
}

// WriteFiles flushes the scope's trace and metrics to the flagged
// destinations at exit.
func (o *ObsFlags) WriteFiles(sc obs.Scope) error {
	return sc.WriteFiles(*o.TraceOut, *o.MetricsOut)
}

// CheckJournalFlags enforces the -journal/-resume/-out/-format rules
// the sharded CLIs share; the returned error is a usage error (exit 2).
// outSet reports whether -out was passed explicitly (dist.FlagWasSet):
// -out has a non-empty default, so presence can't be read from the
// value.
func CheckJournalFlags(tool, journal, format string, resume, outSet bool) error {
	if journal != "" {
		if format != "jsonl" {
			return fmt.Errorf("%s: a -journal is jsonl-only (merge output is byte-identical to a jsonl run)", tool)
		}
		if outSet {
			return fmt.Errorf("%s: -journal and -out are mutually exclusive (merge shard journals with reunion-merge)", tool)
		}
		return nil
	}
	if resume {
		return fmt.Errorf("%s: -resume requires -journal", tool)
	}
	return nil
}
