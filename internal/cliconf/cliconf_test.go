package cliconf

import (
	"bytes"
	"flag"
	"io"
	"strings"
	"testing"

	"reunion"
)

// Every axis parser: accepts its valid names, dedupes with a warning,
// and rejects unknown values with the full valid-name list — the
// fail-fast contract the CLIs rely on.
func TestAxisParsers(t *testing.T) {
	cases := []struct {
		name    string
		parse   func(w io.Writer, csv string) (int, error) // returns value count
		ok      string
		okCount int
		dup     string
		bad     string
		wantErr string // substring the rejection must carry
	}{
		{
			name: "modes sweep",
			parse: func(w io.Writer, csv string) (int, error) {
				ms, err := Modes(w, "t", csv, true)
				return len(ms), err
			},
			ok: "non-redundant,strict,reunion", okCount: 3,
			dup: "reunion,reunion", bad: "warp",
			wantErr: "non-redundant, strict, reunion",
		},
		{
			name: "modes inject",
			parse: func(w io.Writer, csv string) (int, error) {
				ms, err := Modes(w, "t", csv, false)
				return len(ms), err
			},
			ok: "reunion,non-redundant", okCount: 2,
			dup: "reunion,reunion", bad: "warp",
			wantErr: "reunion, non-redundant",
		},
		{
			name: "phantoms",
			parse: func(w io.Writer, csv string) (int, error) {
				ps, err := Phantoms(w, "t", csv)
				return len(ps), err
			},
			ok: "global,shared,null", okCount: 3,
			dup: "global,global", bad: "ghost",
			wantErr: "global, shared, null",
		},
		{
			name: "tlbs",
			parse: func(w io.Writer, csv string) (int, error) {
				ts, err := TLBs(w, "t", csv)
				return len(ts), err
			},
			ok: "hardware,software", okCount: 2,
			dup: "hardware,hardware", bad: "firmware",
			wantErr: "hardware, software",
		},
		{
			name: "consistencies",
			parse: func(w io.Writer, csv string) (int, error) {
				cs, err := Consistencies(w, "t", csv)
				return len(cs), err
			},
			ok: "tso,sc", okCount: 2,
			dup: "tso,tso", bad: "weak",
			wantErr: "tso, sc",
		},
		{
			name: "workloads",
			parse: func(w io.Writer, csv string) (int, error) {
				ps, err := Workloads(w, "t", csv)
				return len(ps), err
			},
			ok: "apache,ocean", okCount: 2,
			dup: "apache,apache", bad: "nope",
			wantErr: "apache",
		},
		{
			name: "seeds",
			parse: func(w io.Writer, csv string) (int, error) {
				ss, err := Seeds(w, "t", csv)
				return len(ss), err
			},
			ok: "1,2,0x10", okCount: 3,
			dup: "1,1", bad: "-1x",
			wantErr: "invalid syntax",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var warn bytes.Buffer
			n, err := c.parse(&warn, c.ok)
			if err != nil || n != c.okCount {
				t.Fatalf("parse(%q) = %d, %v; want %d values", c.ok, n, err, c.okCount)
			}
			if warn.Len() != 0 {
				t.Errorf("unexpected warnings for %q: %q", c.ok, warn.String())
			}

			warn.Reset()
			if n, err := c.parse(&warn, c.dup); err != nil || n != 1 {
				t.Fatalf("parse(%q) = %d, %v; want 1 deduped value", c.dup, n, err)
			}
			if !strings.Contains(warn.String(), "duplicate") {
				t.Errorf("no duplicate warning for %q: %q", c.dup, warn.String())
			}

			if _, err := c.parse(&warn, c.bad); err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("parse(%q) = %v, want error containing %q", c.bad, err, c.wantErr)
			}
		})
	}
}

func TestModesStrictRejectedForInject(t *testing.T) {
	_, err := Modes(io.Discard, "t", "strict", false)
	if err == nil || !strings.Contains(err.Error(), "comparison timing only") {
		t.Fatalf("strict accepted for inject form: %v", err)
	}
	ms, err := Modes(io.Discard, "t", "strict", true)
	if err != nil || len(ms) != 1 || ms[0] != reunion.ModeStrict {
		t.Fatalf("strict rejected for sweep form: %v %v", ms, err)
	}
}

func TestWarningsNameTheTool(t *testing.T) {
	var warn bytes.Buffer
	if _, err := Seeds(&warn, "mytool", "5,5"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warn.String(), "mytool") {
		t.Errorf("warning does not name the tool: %q", warn.String())
	}
}

func TestKernel(t *testing.T) {
	for in, want := range map[string]reunion.Kernel{
		"fastforward":  reunion.KernelFastForward,
		"fast-forward": reunion.KernelFastForward,
		"naive":        reunion.KernelNaive,
	} {
		got, err := Kernel(in)
		if err != nil || got != want {
			t.Errorf("Kernel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := Kernel("warp"); err == nil || !strings.Contains(err.Error(), "fastforward, naive") {
		t.Errorf("Kernel error does not list valid kernels: %v", err)
	}
}

func TestSplitCSVAndNumericParsers(t *testing.T) {
	if got := SplitCSV(" a, ,b,,c "); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SplitCSV = %v", got)
	}
	if out := SplitCSV(""); len(out) != 0 {
		t.Fatalf("SplitCSV(\"\") = %v", out)
	}
	if v, err := Int64s("1,-2,3"); err != nil || len(v) != 3 || v[1] != -2 {
		t.Fatalf("Int64s = %v, %v", v, err)
	}
	if _, err := Int64s("ten"); err == nil {
		t.Fatal("Int64s accepted non-numeric")
	}
	if v, err := Uint64s("0x10,7"); err != nil || v[0] != 16 || v[1] != 7 {
		t.Fatalf("Uint64s = %v, %v", v, err)
	}
	if _, err := Uint64s("-1"); err == nil {
		t.Fatal("Uint64s accepted negative")
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		in           string
		defLo, defHi int64
		lo, hi       int64
		bad          bool
	}{
		{"3-9", 0, 63, 3, 9, false},
		{"5", 0, 63, 5, 5, false},
		{"", 2, 7, 2, 7, false},
		{"9-3", 0, 63, 0, 0, true},
		{"x-3", 0, 63, 0, 0, true},
		{"3-y", 0, 63, 0, 0, true},
	}
	for _, c := range cases {
		lo, hi, err := ParseRange(c.in, c.defLo, c.defHi)
		if c.bad {
			if err == nil {
				t.Errorf("ParseRange(%q) accepted", c.in)
			}
			continue
		}
		if err != nil || lo != c.lo || hi != c.hi {
			t.Errorf("ParseRange(%q) = %d,%d,%v; want %d,%d", c.in, lo, hi, err, c.lo, c.hi)
		}
	}
}

func TestOpenCkptStore(t *testing.T) {
	if s, err := OpenCkptStore("", ""); err != nil || s != nil {
		t.Fatalf("neither flag: %v, %v", s, err)
	}
	if _, err := OpenCkptStore(t.TempDir(), "http://x"); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("both flags: %v", err)
	}
	if s, err := OpenCkptStore(t.TempDir(), ""); err != nil || s == nil {
		t.Fatalf("dir flag: %v, %v", s, err)
	}
	if s, err := OpenCkptStore("", "http://localhost:1"); err != nil || s == nil {
		t.Fatalf("url flag: %v, %v", s, err)
	}
}

func TestCheckJournalFlags(t *testing.T) {
	cases := []struct {
		name            string
		journal, format string
		resume, outSet  bool
		wantErr         string
	}{
		{"plain out", "", "jsonl", false, true, ""},
		{"journal ok", "j.jsonl", "jsonl", false, false, ""},
		{"journal resume ok", "j.jsonl", "jsonl", true, false, ""},
		{"journal csv", "j.jsonl", "csv", false, false, "jsonl-only"},
		{"journal and out", "j.jsonl", "jsonl", false, true, "mutually exclusive"},
		{"resume without journal", "", "jsonl", true, false, "-resume requires -journal"},
	}
	for _, c := range cases {
		err := CheckJournalFlags("t", c.journal, c.format, c.resume, c.outSet)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.wantErr)
		}
	}
}

func TestFlagGroups(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	obsf := RegisterObs(fs).WithHeartbeat(fs)
	ckpt := RegisterCkpt(fs)
	if err := fs.Parse([]string{"-trace-out", "tr.json", "-heartbeat", "5s", "-ckpt-store", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if *obsf.TraceOut != "tr.json" || *obsf.MetricsOut != "" {
		t.Fatalf("obs flags: %q %q", *obsf.TraceOut, *obsf.MetricsOut)
	}
	if hb := obsf.Heartbeat("t", 10); hb == nil || hb.Label != "t" || hb.Total != 10 {
		t.Fatalf("heartbeat: %+v", hb)
	}
	sc := obsf.Scope()
	if sc.Trace == nil {
		t.Fatal("scope has no tracer despite -trace-out")
	}
	if s, err := ckpt.Open(); err != nil || s == nil {
		t.Fatalf("ckpt open: %v, %v", s, err)
	}

	// Heartbeat off by default: nil, and nil-safe downstream.
	fs2 := flag.NewFlagSet("t2", flag.ContinueOnError)
	o2 := RegisterObs(fs2).WithHeartbeat(fs2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if hb := o2.Heartbeat("t", 1); hb != nil {
		t.Fatalf("heartbeat without flag: %+v", hb)
	}
}
