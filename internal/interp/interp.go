// Package interp is a plain functional interpreter for the simulator's
// ISA: no pipeline, no caches, no timing. It serves as the golden model
// for differential testing — a single-threaded program must produce
// identical architectural results on the cycle-level core and here.
package interp

import (
	"fmt"

	"reunion/internal/isa"
	"reunion/internal/mem"
	"reunion/internal/program"
)

// Result summarizes one interpreted run.
type Result struct {
	Regs     [isa.NumRegs]int64
	Steps    int64
	Halted   bool
	FinalPC  int64
	DevReads int64
}

// DeviceRead mirrors the simulator's replicated device-read semantics.
type DeviceRead func(addr uint64, n int64) int64

// Run interprets the thread against the memory image for at most maxSteps
// dynamic instructions. It returns an error on undefined behaviour
// (invalid opcode, PC out of range before Halt).
func Run(t *program.Thread, m *mem.Memory, maxSteps int64, dev DeviceRead) (Result, error) {
	var r Result
	r.Regs = t.InitRegs
	pc := t.Entry
	for r.Steps < maxSteps {
		in, ok := t.Fetch(pc)
		if !ok {
			return r, fmt.Errorf("interp: pc %d out of range in %s", pc, t.Name)
		}
		r.Steps++
		s1 := r.Regs[in.Rs1]
		s2 := r.Regs[in.Rs2]
		next := pc + 1
		switch {
		case in.Op == isa.Nop || in.Op == isa.Membar || in.Op == isa.Trap:
			// no architectural effect in the golden model
		case in.Op == isa.Halt:
			r.Halted = true
			r.FinalPC = pc
			return r, nil
		case in.IsLoad():
			r.Regs[in.Rd] = int64(m.ReadWord(uint64(s1 + in.Imm)))
		case in.IsStore():
			m.WriteWord(uint64(s1+in.Imm), uint64(s2))
		case in.IsAtomic():
			addr := uint64(s1)
			old := int64(m.ReadWord(addr))
			if old == r.Regs[in.Rd] {
				m.WriteWord(addr, uint64(s2))
			}
			r.Regs[in.Rd] = old
		case in.Op == isa.DevLd:
			if dev != nil {
				r.Regs[in.Rd] = dev(uint64(s1+in.Imm), r.DevReads)
			}
			r.DevReads++
		case in.Op == isa.DevSt:
			// devices sink writes
		case in.IsBranch():
			if in.BranchTaken(s1, s2) {
				switch in.Op {
				case isa.Jr:
					next = s1
				default:
					next = in.Imm
				}
			}
		case in.WritesReg():
			r.Regs[in.Rd] = in.ALUResult(s1, s2)
		default:
			return r, fmt.Errorf("interp: unhandled op %v", in.Op)
		}
		r.Regs[0] = 0
		pc = next
	}
	r.FinalPC = pc
	return r, nil
}
