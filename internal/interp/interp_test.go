package interp

import (
	"testing"

	"reunion/internal/isa"
	"reunion/internal/mem"
	"reunion/internal/program"
)

func TestStraightLine(t *testing.T) {
	b := program.NewBuilder("t", 0)
	b.Li(1, 6)
	b.Li(2, 7)
	b.Op3(isa.Mul, 3, 1, 2)
	b.Halt()
	res, err := Run(b.Build(), mem.New(), 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.Regs[3] != 42 {
		t.Fatalf("r3=%d halted=%v", res.Regs[3], res.Halted)
	}
	if res.Steps != 4 {
		t.Fatalf("steps=%d", res.Steps)
	}
}

func TestLoopAndBranches(t *testing.T) {
	b := program.NewBuilder("t", 0)
	b.Li(1, 0)  // i
	b.Li(2, 10) // n
	b.Li(3, 0)  // sum
	b.Label("loop")
	b.Add(3, 3, 1)
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Halt()
	res, err := Run(b.Build(), mem.New(), 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[3] != 45 {
		t.Fatalf("sum=%d want 45", res.Regs[3])
	}
}

func TestMemoryOps(t *testing.T) {
	m := mem.New()
	m.WriteWord(0x1000, 5)
	b := program.NewBuilder("t", 0)
	b.Li(1, 0x1000)
	b.Ld(2, 1, 0)
	b.Addi(2, 2, 1)
	b.St(1, 8, 2)
	b.Halt()
	res, err := Run(b.Build(), m, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[2] != 6 || m.ReadWord(0x1008) != 6 {
		t.Fatalf("r2=%d mem=%d", res.Regs[2], m.ReadWord(0x1008))
	}
}

func TestCASSemantics(t *testing.T) {
	m := mem.New()
	m.WriteWord(0x2000, 0)
	b := program.NewBuilder("t", 0)
	b.Li(1, 0x2000)
	b.Li(2, 0) // expected
	b.Li(3, 1) // new
	b.Cas(2, 1, 3)
	b.Li(4, 0) // expected (will fail: memory now 1)
	b.Li(5, 9)
	b.Cas(4, 1, 5)
	b.Halt()
	res, err := Run(b.Build(), m, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[2] != 0 { // first CAS returns old value 0 (success)
		t.Fatalf("first cas old=%d", res.Regs[2])
	}
	if res.Regs[4] != 1 { // second returns 1 (failure)
		t.Fatalf("second cas old=%d", res.Regs[4])
	}
	if m.ReadWord(0x2000) != 1 {
		t.Fatalf("mem=%d; failed CAS must not write", m.ReadWord(0x2000))
	}
}

func TestR0Hardwired(t *testing.T) {
	b := program.NewBuilder("t", 0)
	b.Li(0, 99)
	b.Add(1, 0, 0)
	b.Halt()
	res, err := Run(b.Build(), mem.New(), 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[0] != 0 || res.Regs[1] != 0 {
		t.Fatalf("r0=%d r1=%d", res.Regs[0], res.Regs[1])
	}
}

func TestDeviceReads(t *testing.T) {
	b := program.NewBuilder("t", 0)
	b.Li(1, 0x5000)
	b.DevLd(2, 1, 0)
	b.DevLd(3, 1, 0)
	b.Halt()
	dev := func(addr uint64, n int64) int64 { return int64(addr) + n }
	res, err := Run(b.Build(), mem.New(), 10, dev)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[2] != 0x5000 || res.Regs[3] != 0x5001 {
		t.Fatalf("dev reads %d %d", res.Regs[2], res.Regs[3])
	}
	if res.DevReads != 2 {
		t.Fatalf("DevReads=%d", res.DevReads)
	}
}

func TestStepLimit(t *testing.T) {
	b := program.NewBuilder("t", 0)
	b.Label("spin")
	b.Jmp("spin")
	res, err := Run(b.Build(), mem.New(), 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted || res.Steps != 50 {
		t.Fatalf("halted=%v steps=%d", res.Halted, res.Steps)
	}
}

func TestWildPCErrors(t *testing.T) {
	b := program.NewBuilder("t", 0)
	b.Nop() // falls off the end
	if _, err := Run(b.Build(), mem.New(), 10, nil); err == nil {
		t.Fatal("expected out-of-range error")
	}
}
