// Package isa defines the compact RISC instruction set executed by the
// simulated cores.
//
// The paper evaluates Reunion on UltraSPARC III; we have no SPARC
// front-end, so we substitute a small 64-bit load/store ISA that carries
// every instruction class Reunion's timing behaviour depends on:
//
//   - plain ALU operations (single- and multi-cycle),
//   - loads and stores (cacheable memory),
//   - atomic compare-and-swap (serializing, both load and store semantics),
//   - conditional branches and jumps (fingerprinted targets),
//   - MEMBAR memory barriers (serializing; every store under SC),
//   - TRAP (serializing; models syscalls and TLB-handler entry/exit),
//   - non-idempotent device accesses (serializing; models MMU registers),
//   - HALT for bounded test programs.
//
// Instructions are fixed records, not encoded bits: the simulator is a
// timing and execution model, not a binary-compatibility exercise. Each
// instruction occupies Bytes of the virtual address space so instruction
// TLB and I-cache behaviour can be modelled on code footprints.
package isa

import "fmt"

// Bytes is the architectural size of one instruction in the virtual
// address space (used for I-cache and ITLB footprint modelling).
const Bytes = 4

// NumRegs is the number of architectural integer registers. Register 0 is
// hardwired to zero, as in most RISC ISAs.
const NumRegs = 32

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes. The zero value is Nop so a zero Instr is harmless.
const (
	Nop Op = iota

	// Register-register ALU.
	Add
	Sub
	Mul
	Div
	And
	Or
	Xor
	Shl
	Shr
	Slt // set rd=1 if rs1 < rs2 (signed)

	// Register-immediate ALU.
	Addi
	Andi
	Ori
	Xori
	Slti
	Shli
	Shri
	Li // rd = imm

	// Memory.
	Ld  // rd = M[rs1+imm]
	St  // M[rs1+imm] = rs2
	Cas // atomic: if M[rs1] == rd then M[rs1] = rs2; rd = old M[rs1]

	// Control flow. Branch targets are absolute instruction indices in Imm.
	Beq // if rs1 == rs2 goto imm
	Bne
	Blt
	Bge
	Jmp // goto imm
	Jr  // goto rs1 (indirect)

	// Serializing system instructions.
	Membar // TSO memory barrier: drains the store buffer
	Trap   // system trap (syscall); Imm selects a service
	DevLd  // rd = device[rs1+imm]; non-idempotent uncached read
	DevSt  // device[rs1+imm] = rs2; non-idempotent uncached write

	Halt // stop the thread (test programs only; workloads loop forever)

	numOps
)

var opNames = [numOps]string{
	Nop: "nop",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr", Slt: "slt",
	Addi: "addi", Andi: "andi", Ori: "ori", Xori: "xori",
	Slti: "slti", Shli: "shli", Shri: "shri", Li: "li",
	Ld: "ld", St: "st", Cas: "cas",
	Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge", Jmp: "jmp", Jr: "jr",
	Membar: "membar", Trap: "trap", DevLd: "devld", DevSt: "devst",
	Halt: "halt",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// Instr is one decoded instruction. Rd/Rs1/Rs2 index architectural
// registers; Imm is an immediate, displacement, or absolute branch target
// (an instruction index) depending on the opcode.
type Instr struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int64
}

// String renders the instruction in a readable assembly-like form.
func (i Instr) String() string {
	switch i.Op {
	case Nop, Membar, Halt:
		return i.Op.String()
	case Trap:
		return fmt.Sprintf("trap %d", i.Imm)
	case Li:
		return fmt.Sprintf("li r%d, %d", i.Rd, i.Imm)
	case Ld:
		return fmt.Sprintf("ld r%d, %d(r%d)", i.Rd, i.Imm, i.Rs1)
	case DevLd:
		return fmt.Sprintf("devld r%d, %d(r%d)", i.Rd, i.Imm, i.Rs1)
	case St:
		return fmt.Sprintf("st r%d, %d(r%d)", i.Rs2, i.Imm, i.Rs1)
	case DevSt:
		return fmt.Sprintf("devst r%d, %d(r%d)", i.Rs2, i.Imm, i.Rs1)
	case Cas:
		return fmt.Sprintf("cas r%d, (r%d), r%d", i.Rd, i.Rs1, i.Rs2)
	case Beq, Bne, Blt, Bge:
		return fmt.Sprintf("%s r%d, r%d, @%d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case Jmp:
		return fmt.Sprintf("jmp @%d", i.Imm)
	case Jr:
		return fmt.Sprintf("jr r%d", i.Rs1)
	case Addi, Andi, Ori, Xori, Slti, Shli, Shri:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

// IsLoad reports whether the instruction reads cacheable memory.
func (i Instr) IsLoad() bool { return i.Op == Ld }

// IsStore reports whether the instruction writes cacheable memory.
func (i Instr) IsStore() bool { return i.Op == St }

// IsAtomic reports whether the instruction is an atomic read-modify-write.
func (i Instr) IsAtomic() bool { return i.Op == Cas }

// IsMem reports whether the instruction accesses cacheable memory at all.
func (i Instr) IsMem() bool { return i.IsLoad() || i.IsStore() || i.IsAtomic() }

// IsBranch reports whether the instruction may redirect control flow.
func (i Instr) IsBranch() bool {
	switch i.Op {
	case Beq, Bne, Blt, Bge, Jmp, Jr:
		return true
	}
	return false
}

// IsCondBranch reports whether the instruction is a conditional branch.
func (i Instr) IsCondBranch() bool {
	switch i.Op {
	case Beq, Bne, Blt, Bge:
		return true
	}
	return false
}

// IsSerializing reports whether the instruction has serializing semantics
// under the baseline (TSO) consistency model: traps, memory barriers,
// atomic memory operations, and non-idempotent device accesses. Serializing
// instructions execute only at the head of the reorder buffer after all
// older instructions have been checked and retired, and no younger
// instruction executes until they retire (paper §4.4).
func (i Instr) IsSerializing() bool {
	switch i.Op {
	case Trap, Membar, Cas, DevLd, DevSt:
		return true
	}
	return false
}

// IsNonIdempotent reports whether re-executing the instruction would have
// side effects (device accesses).
func (i Instr) IsNonIdempotent() bool { return i.Op == DevLd || i.Op == DevSt }

// WritesReg reports whether the instruction produces a register result,
// and which register it writes. Writes to r0 are discarded but still
// flow through the pipeline (and the fingerprint) like any result.
func (i Instr) WritesReg() bool {
	switch i.Op {
	case Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr, Slt,
		Addi, Andi, Ori, Xori, Slti, Shli, Shri, Li,
		Ld, Cas, DevLd:
		return true
	}
	return false
}

// ReadsRs1 reports whether the instruction reads Rs1.
func (i Instr) ReadsRs1() bool {
	switch i.Op {
	case Nop, Li, Jmp, Membar, Trap, Halt:
		return false
	}
	return true
}

// ReadsRs2 reports whether the instruction reads Rs2.
func (i Instr) ReadsRs2() bool {
	switch i.Op {
	case Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr, Slt,
		St, Cas, Beq, Bne, Blt, Bge, DevSt:
		return true
	}
	return false
}

// ReadsRdAsSource reports whether the instruction reads its Rd field as an
// input operand (only CAS: Rd carries the expected value in and the old
// value out).
func (i Instr) ReadsRdAsSource() bool { return i.Op == Cas }

// ExecLatency returns the execution latency of the instruction in cycles,
// excluding any memory-system time. Loads add cache access time on top.
func (i Instr) ExecLatency() int64 {
	switch i.Op {
	case Mul:
		return 3
	case Div:
		return 12
	default:
		return 1
	}
}

// ALUResult computes the architectural result for non-memory,
// register-writing instructions given the source operand values.
// It panics for opcodes without a pure ALU result.
func (i Instr) ALUResult(s1, s2 int64) int64 {
	switch i.Op {
	case Add:
		return s1 + s2
	case Sub:
		return s1 - s2
	case Mul:
		return s1 * s2
	case Div:
		if s2 == 0 {
			return -1 // architected divide-by-zero result; keeps workloads total
		}
		return s1 / s2
	case And:
		return s1 & s2
	case Or:
		return s1 | s2
	case Xor:
		return s1 ^ s2
	case Shl:
		return s1 << (uint64(s2) & 63)
	case Shr:
		return int64(uint64(s1) >> (uint64(s2) & 63))
	case Slt:
		if s1 < s2 {
			return 1
		}
		return 0
	case Addi:
		return s1 + i.Imm
	case Andi:
		return s1 & i.Imm
	case Ori:
		return s1 | i.Imm
	case Xori:
		return s1 ^ i.Imm
	case Slti:
		if s1 < i.Imm {
			return 1
		}
		return 0
	case Shli:
		return s1 << (uint64(i.Imm) & 63)
	case Shri:
		return int64(uint64(s1) >> (uint64(i.Imm) & 63))
	case Li:
		return i.Imm
	default:
		panic("isa: ALUResult on non-ALU op " + i.Op.String())
	}
}

// BranchTaken evaluates a conditional branch given its operands.
func (i Instr) BranchTaken(s1, s2 int64) bool {
	switch i.Op {
	case Beq:
		return s1 == s2
	case Bne:
		return s1 != s2
	case Blt:
		return s1 < s2
	case Bge:
		return s1 >= s2
	case Jmp, Jr:
		return true
	default:
		return false
	}
}
