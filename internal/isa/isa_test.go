package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

var allOps = func() []Op {
	var ops []Op
	for o := Op(0); o < numOps; o++ {
		ops = append(ops, o)
	}
	return ops
}()

func TestOpStringsAreUnique(t *testing.T) {
	seen := map[string]Op{}
	for _, o := range allOps {
		s := o.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no mnemonic", o)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("mnemonic %q used by %d and %d", s, prev, o)
		}
		seen[s] = o
	}
	if !strings.HasPrefix(Op(250).String(), "op(") {
		t.Error("invalid op should format as op(n)")
	}
}

func TestClassificationConsistency(t *testing.T) {
	for _, o := range allOps {
		in := Instr{Op: o}
		if in.IsLoad() && in.IsStore() {
			t.Errorf("%v is both load and store", o)
		}
		if in.IsMem() != (in.IsLoad() || in.IsStore() || in.IsAtomic()) {
			t.Errorf("%v IsMem inconsistent", o)
		}
		if in.IsCondBranch() && !in.IsBranch() {
			t.Errorf("%v cond branch but not branch", o)
		}
		if in.IsNonIdempotent() && !in.IsSerializing() {
			t.Errorf("%v non-idempotent ops must serialize", o)
		}
	}
}

func TestSerializingSet(t *testing.T) {
	want := map[Op]bool{Trap: true, Membar: true, Cas: true, DevLd: true, DevSt: true}
	for _, o := range allOps {
		if got := (Instr{Op: o}).IsSerializing(); got != want[o] {
			t.Errorf("%v IsSerializing=%v want %v", o, got, want[o])
		}
	}
}

func TestWritesRegSet(t *testing.T) {
	writers := []Op{Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr, Slt,
		Addi, Andi, Ori, Xori, Slti, Shli, Shri, Li, Ld, Cas, DevLd}
	w := map[Op]bool{}
	for _, o := range writers {
		w[o] = true
	}
	for _, o := range allOps {
		if got := (Instr{Op: o}).WritesReg(); got != w[o] {
			t.Errorf("%v WritesReg=%v want %v", o, got, w[o])
		}
	}
}

func TestALUResults(t *testing.T) {
	cases := []struct {
		in     Instr
		s1, s2 int64
		want   int64
	}{
		{Instr{Op: Add}, 2, 3, 5},
		{Instr{Op: Sub}, 2, 3, -1},
		{Instr{Op: Mul}, 7, 6, 42},
		{Instr{Op: Div}, 42, 6, 7},
		{Instr{Op: Div}, 42, 0, -1}, // architected divide-by-zero
		{Instr{Op: And}, 0b1100, 0b1010, 0b1000},
		{Instr{Op: Or}, 0b1100, 0b1010, 0b1110},
		{Instr{Op: Xor}, 0b1100, 0b1010, 0b0110},
		{Instr{Op: Shl}, 1, 4, 16},
		{Instr{Op: Shl}, 1, 68, 16}, // shift amount mod 64
		{Instr{Op: Shr}, -1, 60, 15},
		{Instr{Op: Slt}, -5, 3, 1},
		{Instr{Op: Slt}, 3, -5, 0},
		{Instr{Op: Addi, Imm: 10}, 5, 99, 15},
		{Instr{Op: Andi, Imm: 6}, 7, 99, 6},
		{Instr{Op: Ori, Imm: 8}, 7, 99, 15},
		{Instr{Op: Xori, Imm: -1}, 0, 99, -1},
		{Instr{Op: Slti, Imm: 10}, 5, 99, 1},
		{Instr{Op: Shli, Imm: 3}, 2, 99, 16},
		{Instr{Op: Shri, Imm: 3}, 16, 99, 2},
		{Instr{Op: Li, Imm: -7}, 99, 99, -7},
	}
	for _, c := range cases {
		if got := c.in.ALUResult(c.s1, c.s2); got != c.want {
			t.Errorf("%v(%d,%d)=%d want %d", c.in.Op, c.s1, c.s2, got, c.want)
		}
	}
}

func TestALUResultPanicsOnNonALU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(Instr{Op: Ld}).ALUResult(0, 0)
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op     Op
		s1, s2 int64
		want   bool
	}{
		{Beq, 1, 1, true}, {Beq, 1, 2, false},
		{Bne, 1, 2, true}, {Bne, 1, 1, false},
		{Blt, -1, 0, true}, {Blt, 0, 0, false},
		{Bge, 0, 0, true}, {Bge, -1, 0, false},
		{Jmp, 0, 0, true}, {Jr, 5, 0, true},
		{Add, 1, 1, false}, // non-branch
	}
	for _, c := range cases {
		if got := (Instr{Op: c.op}).BranchTaken(c.s1, c.s2); got != c.want {
			t.Errorf("%v(%d,%d)=%v want %v", c.op, c.s1, c.s2, got, c.want)
		}
	}
}

// Property: ALUResult never panics for any ALU opcode and any operands
// (total function; the simulator executes speculative garbage).
func TestALUTotality(t *testing.T) {
	aluOps := []Op{Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr, Slt,
		Addi, Andi, Ori, Xori, Slti, Shli, Shri, Li}
	f := func(opIdx uint8, s1, s2, imm int64) bool {
		in := Instr{Op: aluOps[int(opIdx)%len(aluOps)], Imm: imm}
		_ = in.ALUResult(s1, s2)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestExecLatency(t *testing.T) {
	if (Instr{Op: Mul}).ExecLatency() != 3 {
		t.Error("mul latency")
	}
	if (Instr{Op: Div}).ExecLatency() != 12 {
		t.Error("div latency")
	}
	if (Instr{Op: Add}).ExecLatency() != 1 {
		t.Error("add latency")
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Nop}, "nop"},
		{Instr{Op: Ld, Rd: 3, Rs1: 2, Imm: 8}, "ld r3, 8(r2)"},
		{Instr{Op: St, Rs1: 2, Rs2: 4, Imm: 16}, "st r4, 16(r2)"},
		{Instr{Op: Cas, Rd: 1, Rs1: 2, Rs2: 3}, "cas r1, (r2), r3"},
		{Instr{Op: Beq, Rs1: 1, Rs2: 2, Imm: 7}, "beq r1, r2, @7"},
		{Instr{Op: Jmp, Imm: 3}, "jmp @3"},
		{Instr{Op: Trap, Imm: 2}, "trap 2"},
		{Instr{Op: Li, Rd: 5, Imm: -3}, "li r5, -3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String()=%q want %q", got, c.want)
		}
	}
}
