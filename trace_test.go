package reunion

import (
	"testing"

	"reunion/internal/workload"
)

func TestLatSweep(t *testing.T) {
	for _, p := range []workload.Params{workload.Apache(), workload.OracleOLTP(), workload.EM3D(), workload.Moldyn()} {
		base, _ := Run(Options{Mode: ModeNonRedundant, Workload: p, Seed: 7})
		for _, lat := range []int64{ZeroLatency, 10, 40} {
			s, _ := Run(Options{Mode: ModeStrict, Workload: p, Seed: 7, CompareLatency: lat})
			r, err := Run(Options{Mode: ModeReunion, Workload: p, Seed: 7, CompareLatency: lat})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-12s L=%2d strict=%.3f reunion=%.3f (inc/M=%.1f)", p.Name, lat, s.UserIPC/base.UserIPC, r.UserIPC/base.UserIPC, r.IncoherencePerM)
		}
	}
}
