package reunion

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"reunion/internal/ckptstore"
	"reunion/internal/coherence"
	"reunion/internal/core"
	"reunion/internal/cpu"
	"reunion/internal/mem"
	"reunion/internal/obs"
	"reunion/internal/sim"
	"reunion/internal/snoop"
)

// Checkpoint is a deep copy of a System's complete mutable state: the
// event queue (clock, pending events), scheduler counters, backing
// memory, every core pipeline with its private caches/TLBs/predictor,
// the execution-model gates, the memory-system topology (directory L2 or
// snoopy bus), the liveness watchdog, and the interrupt-delivery chain.
//
// A Checkpoint restores only onto the System it was taken from: pending
// events and in-flight requests hold callbacks into that system's
// component objects, and Restore rewrites those objects' state in place
// so the callbacks replay exactly. Restore after arbitrary further
// execution (a fault trial, a different measurement window) yields a
// machine bit-identical to the moment of Snapshot — the invariant the
// snapshot equivalence tests prove.
//
// Not captured: the optional trace ring's contents (observability, not
// simulation state — a restored run re-records its events) and the
// OnFault* observer hooks' *own* state (the hook function values are
// restored, so per-trial wrappers installed after a snapshot are
// unwound).
type Checkpoint struct {
	owner *System

	eq     sim.EventQueueState
	sched  sim.SchedulerState
	mem    *mem.MemoryState
	cores  []*cpu.CoreState
	pairs  []*core.PairState
	nr     []*core.NonRedundantGateState
	strict []*core.StrictGateState
	l2     *coherence.L2State
	bus    *snoop.BusState

	kernel        Kernel
	appliedKernel Kernel
	kernelApplied bool

	interruptEvery, interruptCost int64
	intArmed, intGen              int64

	watchLast, watchSince int64
	watchHalted           bool
}

// Snapshot captures the complete machine state. It is read-only — a run
// that snapshots and continues is bit-identical to one that never
// snapshotted — and may be taken at any cycle, including with memory
// responses, comparison decisions, and interrupt boundaries in flight.
func (s *System) Snapshot() *Checkpoint {
	cp := &Checkpoint{
		owner: s,
		eq:    s.EQ.Snapshot(),
		sched: s.Sched.Snapshot(),
		mem:   s.Mem.Snapshot(),

		kernel:        s.Kernel,
		appliedKernel: s.appliedKernel,
		kernelApplied: s.kernelApplied,

		interruptEvery: s.InterruptEvery,
		interruptCost:  s.InterruptCost,
		intArmed:       s.intArmed,
		intGen:         s.intGen,

		watchLast:   s.watchLast,
		watchSince:  s.watchSince,
		watchHalted: s.watchHalted,
	}
	for _, c := range s.Cores {
		cp.cores = append(cp.cores, c.Snapshot())
	}
	for _, p := range s.Pairs {
		cp.pairs = append(cp.pairs, p.Snapshot())
	}
	if len(s.Pairs) == 0 {
		for _, g := range s.gates {
			switch g := g.(type) {
			case *core.NonRedundantGate:
				cp.nr = append(cp.nr, g.Snapshot())
			case *core.StrictGate:
				cp.strict = append(cp.strict, g.Snapshot())
			}
		}
	}
	if s.L2 != nil {
		cp.l2 = s.L2.Snapshot()
	}
	if s.Bus != nil {
		cp.bus = s.Bus.Snapshot()
	}
	return cp
}

// Restore rewrites the system's state from a checkpoint taken on this
// same system, rewinding the clock, the pending-event set, and every
// component to the snapshotted cycle. A checkpoint restores any number
// of times; each restored run re-executes bit-identically.
func (s *System) Restore(cp *Checkpoint) {
	if cp.owner != s {
		panic("reunion: Restore with a checkpoint from a different System")
	}
	s.EQ.Restore(cp.eq)
	s.Sched.Restore(cp.sched)
	s.Mem.Restore(cp.mem)
	for i, c := range s.Cores {
		c.Restore(cp.cores[i])
	}
	for i, p := range s.Pairs {
		p.Restore(cp.pairs[i])
	}
	if len(s.Pairs) == 0 {
		ni, si := 0, 0
		for _, g := range s.gates {
			switch g := g.(type) {
			case *core.NonRedundantGate:
				g.Restore(cp.nr[ni])
				ni++
			case *core.StrictGate:
				g.Restore(cp.strict[si])
				si++
			}
		}
	}
	if s.L2 != nil {
		s.L2.Restore(cp.l2)
	}
	if s.Bus != nil {
		s.Bus.Restore(cp.bus)
	}

	s.Kernel = cp.kernel
	s.appliedKernel = cp.appliedKernel
	s.kernelApplied = cp.kernelApplied

	s.InterruptEvery = cp.interruptEvery
	s.InterruptCost = cp.interruptCost
	s.intArmed = cp.intArmed
	s.intGen = cp.intGen

	s.watchLast = cp.watchLast
	s.watchSince = cp.watchSince
	s.watchHalted = cp.watchHalted
}

// WarmCache reuses checkpointed warm state across measured runs (see
// Options.Warm). Entries are keyed by the snapshot-invariant axes — every
// option that shapes the simulation from construction through the warmup
// window: mode, workload profile, thread count, seed, comparison latency,
// phantom strength, TLB discipline, consistency model, fingerprint
// interval, warm window, prefill, machine config, and kernel. Options
// that only shape the measurement phase (measure window, commit target,
// trial deadline, injection) are deliberately excluded: runs differing
// only there share one warmed system, restoring its checkpoint instead of
// re-warming from cycle 0 — the dominant host-time cost of a
// fault-injection campaign, where hundreds of trials share one cell's
// warm state.
type WarmCache struct {
	mu sync.Mutex
	m  map[string]*warmEntry

	// maxEntries bounds the resident warmed systems (each holds a full
	// machine image). At the cap, runs with new keys fall back to fresh
	// warmup without caching — results are identical either way.
	maxEntries int

	// store, when set (UseStore), backs the in-memory cache with a
	// persistent content-addressed checkpoint store: a key's first run
	// here tries a fetch+restore before warming from cycle 0, and a
	// locally-computed warmup is uploaded for other processes. Every
	// store-path failure — miss, network error, corrupt blob, format or
	// fingerprint mismatch — silently falls back to local warmup:
	// results never depend on the store, only host time does.
	store ckptstore.Store

	warmups   atomic.Int64 // full local warmups performed
	storeHits atomic.Int64 // warmups avoided via a fetched checkpoint

	// Telemetry (Observe). Pure observers: the cached systems, the
	// checkpoints, and every Result are byte-identical with or without a
	// scope attached.
	obsTrace      *obs.Tracer
	warmupsMetric *obs.Counter
	hitsMetric    *obs.Counter
	missMetric    *obs.Counter
	poisonMetric  *obs.Counter
	warmupTime    *obs.Histogram
	restoreTime   *obs.Histogram
}

type warmEntry struct {
	mu   sync.Mutex
	init bool
	sys  *System
	cp   *Checkpoint
}

// NewWarmCache returns an empty warm-state cache safe for concurrent use.
// The default capacity keeps a few dozen warmed machines resident — sized
// for a campaign's cell matrix; a full machine image is tens of MB.
func NewWarmCache() *WarmCache {
	return &WarmCache{m: make(map[string]*warmEntry), maxEntries: 32}
}

// warmKey fingerprints every option the warm phase depends on. It must
// include anything that changes the machine, the program, or the warmup
// execution — a missed field would let two differing configurations share
// warm state and silently diverge from their straight-through runs.
func warmKey(o Options) string {
	cfgKey := ""
	if o.Config != nil {
		cfgKey = fmt.Sprintf("%+v", *o.Config)
	}
	return fmt.Sprintf("%v|%+v|%d|%d|%d|%v|%v|%v|%d|%d|%v|%v|%s",
		o.Mode, o.Workload, o.Threads, o.Seed, o.CompareLatency,
		o.Phantom, o.TLB, o.Consistency, o.FPInterval, o.WarmCycles,
		o.NoPrefill, o.Kernel, cfgKey)
}

// run serves one measured run from the cache: the first run for a key
// warms and snapshots, later runs restore. The entry stays locked through
// the measurement phase (one system, single-threaded), so runs sharing
// warm state serialize while distinct keys proceed in parallel.
func (w *WarmCache) run(o Options) (Result, error) {
	e := w.entry(warmKey(o))
	if e == nil {
		return measure(warmSystem(o), o) // cache full: fresh, uncached run
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.init && w.store != nil {
		w.tryFetch(e, o)
	}
	if !e.init {
		// Mark the entry initialized only once the snapshot exists: if
		// warmup panics (e.g. the liveness watchdog), the next run for the
		// key must retry the warmup — and hit the original diagnostic —
		// rather than restore from a half-built entry.
		sp := w.obsTrace.StartSpan("warm", "warmup",
			obs.Arg{Key: "workload", Val: o.Workload.Name}, obs.Arg{Key: "mode", Val: o.Mode.String()})
		begin := timeNowIfObserved(w)
		e.sys = warmSystem(o)
		e.cp = e.sys.Snapshot()
		e.init = true
		w.warmups.Add(1)
		w.warmupsMetric.Inc()
		observeSince(w.warmupTime, begin)
		sp.End()
		if w.store != nil {
			sp := w.obsTrace.StartSpan("warm", "store_put", obs.Arg{Key: "key", Val: ckptstore.KeyName(CheckpointKey(o))})
			if blob, err := EncodeCheckpoint(e.cp, CheckpointKey(o)); err == nil {
				_ = w.store.Put(CheckpointKey(o), blob)
			}
			sp.End()
		}
	} else {
		sp := w.obsTrace.StartSpan("warm", "restore",
			obs.Arg{Key: "workload", Val: o.Workload.Name}, obs.Arg{Key: "mode", Val: o.Mode.String()})
		begin := timeNowIfObserved(w)
		e.sys.Restore(e.cp)
		observeSince(w.restoreTime, begin)
		sp.End()
	}
	return measure(e.sys, o)
}

// timeNowIfObserved avoids the clock read entirely when the cache has no
// telemetry attached.
func timeNowIfObserved(w *WarmCache) time.Time {
	if w.obsTrace == nil && w.warmupTime == nil && w.restoreTime == nil {
		return time.Time{}
	}
	return time.Now()
}

// observeSince folds a wall-time measurement into h when both the
// histogram and the start time exist.
func observeSince(h *obs.Histogram, begin time.Time) {
	if h == nil || begin.IsZero() {
		return
	}
	h.Observe(time.Since(begin).Microseconds())
}

// Observe attaches telemetry to the cache: spans for warmups, restores,
// and store fetches, plus warm_warmups_total, warm_store_hits_total,
// warm_store_misses_total, and warm_poisoned_blobs_total counters and
// warmup/restore duration histograms. Call before the first run.
func (w *WarmCache) Observe(sc obs.Scope) {
	w.obsTrace = sc.Trace
	if m := sc.Metrics; m != nil {
		w.warmupsMetric = m.Counter("warm_warmups_total", "Full local warmups performed.")
		w.hitsMetric = m.Counter("warm_store_hits_total", "Warmups avoided by restoring a stored checkpoint.")
		w.missMetric = m.Counter("warm_store_misses_total", "Store fetches that found no checkpoint.")
		w.poisonMetric = m.Counter("warm_poisoned_blobs_total", "Stored blobs rejected (corrupt, stale format, or wrong fingerprint) and recomputed locally.")
		w.warmupTime = m.Histogram("warm_warmup_duration_us", "Wall time of one full warmup in microseconds.")
		w.restoreTime = m.Histogram("warm_restore_duration_us", "Wall time of one checkpoint restore in microseconds.")
	}
}

// UseStore backs the cache with a persistent checkpoint store (a local
// directory or a reunion-ckptd client). Call before the first run.
func (w *WarmCache) UseStore(s ckptstore.Store) { w.store = s }

// Warmups returns how many full local warmups this cache has performed;
// StoreHits returns how many it avoided by restoring a fetched
// checkpoint. Together they are the fleet-wide "one warmup per cell"
// measurement the store-equivalence benchmark reports.
func (w *WarmCache) Warmups() int64 { return w.warmups.Load() }

// StoreHits returns the number of warmups served from the store.
func (w *WarmCache) StoreHits() int64 { return w.storeHits.Load() }

// tryFetch attempts to initialize a warm entry from the persistent
// store: fetch, decode, bind onto a freshly built cold system, restore.
// Every failure leaves the entry uninitialized — the caller warms
// locally, exactly as if the store did not exist. The decoder's
// checksum and structural validation plus Bind's key and geometry
// checks stand between a hostile or stale blob and a restore; a blob
// encoded under a different format version or options fingerprint is a
// recompute, never an error.
func (w *WarmCache) tryFetch(e *warmEntry, o Options) {
	key := CheckpointKey(o)
	sp := w.obsTrace.StartSpan("warm", "store_fetch", obs.Arg{Key: "key", Val: ckptstore.KeyName(key)})
	blob, err := w.store.Get(key)
	if err != nil {
		if errors.Is(err, ckptstore.ErrNotFound) {
			w.missMetric.Inc()
			sp.End(obs.Arg{Key: "outcome", Val: "miss"})
		} else {
			w.poisonMetric.Inc()
			sp.End(obs.Arg{Key: "outcome", Val: "error"})
		}
		return
	}
	d, err := DecodeCheckpoint(blob)
	if err != nil {
		w.poisonMetric.Inc()
		sp.End(obs.Arg{Key: "outcome", Val: "poisoned"})
		return
	}
	sys := buildSystem(o)
	cp, err := d.Bind(sys, key)
	if err != nil {
		w.poisonMetric.Inc()
		sp.End(obs.Arg{Key: "outcome", Val: "poisoned"})
		return
	}
	sys.Restore(cp)
	e.sys, e.cp, e.init = sys, cp, true
	w.storeHits.Add(1)
	w.hitsMetric.Inc()
	sp.End(obs.Arg{Key: "outcome", Val: "hit"})
}

// Len returns the number of warm keys the cache holds (entries are
// created on a key's first run). A sharded campaign's per-worker cache
// holds only the keys of that shard's own cells — the warm-locality
// property the distributed-execution tests assert.
func (w *WarmCache) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.m)
}

// entry returns the (possibly new) entry for a key, or nil when the cache
// is at capacity and the key is new.
func (w *WarmCache) entry(key string) *warmEntry {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.m[key]
	if !ok {
		if len(w.m) >= w.maxEntries {
			return nil
		}
		e = &warmEntry{}
		w.m[key] = e
	}
	return e
}
