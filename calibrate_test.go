package reunion

import (
	"testing"

	"reunion/internal/workload"
)

// TestCalibrate reports per-workload calibration metrics (baseline IPC,
// normalized Strict/Reunion performance, TLB and incoherence rates) — the
// table used to tune the synthetic suite against the paper's
// characteristics. Run with -v to see the rows.
func TestCalibrate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, p := range workload.Suite() {
		base, err := Run(Options{Mode: ModeNonRedundant, Workload: p, Seed: 7})
		if err != nil {
			t.Fatalf("%s base: %v", p.Name, err)
		}
		strict, err := Run(Options{Mode: ModeStrict, Workload: p, Seed: 7})
		if err != nil {
			t.Fatalf("%s strict: %v", p.Name, err)
		}
		reun, err := Run(Options{Mode: ModeReunion, Workload: p, Seed: 7})
		if err != nil {
			t.Fatalf("%s reunion: %v", p.Name, err)
		}
		t.Logf("%-12s base IPC=%.3f strict=%.3f (%.2f) reunion=%.3f (%.2f) | TLB/M=%.0f inc/M=%.1f ser/M=%.0f L1Dmiss%%=%.1f recov=%d sync=%d",
			p.Name, base.UserIPC, strict.UserIPC, strict.UserIPC/base.UserIPC,
			reun.UserIPC, reun.UserIPC/base.UserIPC,
			base.TLBMissPerM, reun.IncoherencePerM,
			float64(base.Serializing)*1e6/float64(base.Committed),
			100*float64(base.L1DMisses)/float64(base.L1DMisses+base.L1DHits),
			reun.Recoveries, reun.SyncRequests)
	}
}
