package reunion

import (
	"testing"

	"reunion/internal/interp"
	"reunion/internal/isa"
	"reunion/internal/workload"
)

// TestGoldenSingleThread differentially tests the cycle-level pipeline
// against the functional interpreter: a single-threaded workload must
// produce identical architectural register state.
func TestGoldenSingleThread(t *testing.T) {
	p := workload.Apache()
	w := p.Build(7, 1) // one thread

	// Bound the program: replace the back-edge with a halt after N iters.
	// Instead, run the pipeline for a fixed cycle count and compare the
	// committed instruction count's prefix state: simplest is to run the
	// interpreter for exactly the number of instructions the pipeline
	// committed, on a fresh copy of memory, and compare ARFs.
	sys := NewSystem(DefaultConfig(), ModeNonRedundant, w, 7)
	sys.Prefill()
	sys.Run(30000)
	c := sys.Cores[0]
	committed := c.Stats.Committed

	// Fresh memory with the same init for the interpreter.
	w2 := p.Build(7, 1)
	m2 := sysMemFor(w2)
	res, err := interp.Run(w2.Threads[0], m2, committed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != committed {
		t.Fatalf("interp steps %d != committed %d", res.Steps, committed)
	}
	arf := c.ARF()
	for r := 0; r < isa.NumRegs; r++ {
		if arf[r] != res.Regs[r] {
			t.Errorf("r%d: pipeline=%d interp=%d", r, arf[r], res.Regs[r])
		}
	}
	t.Logf("committed %d instructions, ARFs match=%v", committed, !t.Failed())
}

func sysMemFor(w *workload.Workload) *memWrap { return newMemWrap(w) }
