package reunion

import (
	"testing"

	"reunion/internal/core"
	"reunion/internal/workload"
)

// TestDebugWedge is a diagnostic scaffold (kept because it doubles as a
// liveness regression test): it runs the lock-protected counter micro
// under each execution model and fails with a full state dump if the
// system stops making progress or computes the wrong count.
func TestDebugWedge(t *testing.T) {
	for _, mode := range []Mode{ModeNonRedundant, ModeStrict, ModeReunion} {
		t.Run(mode.String(), func(t *testing.T) {
			core.Debug = testing.Verbose()
			defer func() { core.Debug = false }()
			w := workload.MicroCounter(4, 50)
			sys := NewSystem(DefaultConfig(), mode, w, 1)

			dump := func() {
				for _, cc := range sys.Cores {
					t.Log(cc.DumpState())
				}
				for _, p := range sys.Pairs {
					t.Log(p.DebugString())
				}
				t.Log(sys.L2.DebugDir(workload.LockBase))
				t.Log(sys.L2.DebugDir(workload.CounterAddr))
			}

			last := make([]int64, len(sys.Cores))
			stuck := make([]int64, len(sys.Cores))
			for i := 0; i < 4000; i++ {
				sys.Run(1000)
				allHalted := true
				for j, c := range sys.Cores {
					if c.Halted() {
						continue
					}
					allHalted = false
					if c.Stats.Committed == last[j] {
						stuck[j]++
						if stuck[j] > 300 {
							dump()
							t.Fatalf("core %d wedged at cycle %d", j, sys.EQ.Now())
						}
					} else {
						stuck[j] = 0
						last[j] = c.Stats.Committed
					}
				}
				if allHalted {
					ctr, _ := sys.CoherentWord(workload.CounterAddr)
					if ctr != 200 {
						dump()
						t.Fatalf("counter=%d want 200", ctr)
					}
					return
				}
			}
			dump()
			t.Fatal("did not halt in 4M cycles (livelock)")
		})
	}
}
