package reunion

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"

	"reunion/internal/campaign"
	"reunion/internal/dist"
	"reunion/internal/obs"
	"reunion/internal/stats"
	"reunion/internal/sweep"
	"reunion/internal/workload"
)

// ExpConfig sizes an experiment campaign. Quick settings keep `go test
// -bench` affordable; Full settings match the paper's methodology more
// closely (longer windows, several matched seeds).
//
// Every table/figure reproduction is declared as a sweep spec (a cross
// product of workload × variant axes) and executed through the
// internal/sweep worker-pool engine, so a campaign saturates the machine
// instead of running one simulation at a time. Results are assembled in
// point-index order, which keeps every figure deterministic for any
// Parallelism.
type ExpConfig struct {
	Seeds         []uint64
	WarmCycles    int64
	MeasureCycles int64
	// Table3Cycles extends the measurement window for event-rate
	// experiments (input incoherence under global phantoms is rare, so it
	// needs long windows to count).
	Table3Cycles int64
	Out          io.Writer

	// Parallelism bounds the sweep engine's worker pool for each
	// experiment matrix (0 = GOMAXPROCS).
	Parallelism int

	// Kernel selects the simulation kernel for every run in the campaign
	// (default KernelFastForward; results are bit-identical either way).
	Kernel Kernel

	// Obs is the campaign's observability scope: sweep and coverage
	// engines report spans and metrics into it, and the warm-state cache
	// registers its hit/miss/warmup instruments. Set it through Observe so
	// the cache is wired too. Zero value = everything off. Pure observer:
	// results are byte-identical with or without a scope.
	Obs obs.Scope

	// Shard/NShards restrict the Monte-Carlo campaigns (CoverageExperiment)
	// to one contiguous slice of the flattened cells×trials space, the
	// slice a dist.Plan assigns to Shard — how a long campaign fans out
	// across processes and machines. Per-trial draws and classification
	// are unchanged (both are pure functions of trial coordinates); the
	// worker runs, and therefore warms, only its own cells, and its
	// report covers only its slice. Zero values mean unsharded.
	Shard, NShards int

	// base memoizes non-redundant baseline runs: sweeps reuse the same
	// baseline across latencies and modes, and the singleflight entries
	// keep concurrent cells from running the same baseline twice.
	base *memo[Result]

	// warm is the campaign-wide checkpointed warm-state cache: cells that
	// differ only in measurement-phase knobs (window length, commit
	// target, injection) restore a shared warm snapshot instead of
	// re-warming from cycle 0. Results are bit-identical either way.
	warm *WarmCache
}

// QuickExp returns a campaign sized for CI and `go test -bench`.
func QuickExp(out io.Writer) ExpConfig {
	return ExpConfig{
		Seeds:         DefaultSeeds(1),
		WarmCycles:    40_000,
		MeasureCycles: 30_000,
		Table3Cycles:  120_000,
		Out:           out,
		base:          newMemo[Result](),
		warm:          NewWarmCache(),
	}
}

// FullExp returns a campaign sized like the paper's sampling methodology.
func FullExp(out io.Writer) ExpConfig {
	return ExpConfig{
		Seeds:         DefaultSeeds(3),
		WarmCycles:    100_000,
		MeasureCycles: 50_000,
		Table3Cycles:  400_000,
		Out:           out,
		base:          newMemo[Result](),
		warm:          NewWarmCache(),
	}
}

// memo is a per-key singleflight cache: the first caller for a key
// computes the value, concurrent callers with the same key block on the
// same entry instead of duplicating the work. Baseline runs (normalized
// sweeps) and golden runs (fault-injection trials) both sit behind one.
type memo[V any] struct {
	mu sync.Mutex
	m  map[string]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

func newMemo[V any]() *memo[V] {
	return &memo[V]{m: make(map[string]*memoEntry[V])}
}

func (c *memo[V]) do(key string, f func() (V, error)) (V, error) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &memoEntry[V]{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = f() })
	return e.val, e.err
}

// baseline runs (or reuses) the non-redundant baseline for o. The cache
// key deliberately omits CompareLatency and Phantom: neither affects a
// run without redundant pairs, which is what lets one baseline serve a
// whole latency sweep.
func (c ExpConfig) baseline(o Options) (Result, error) {
	if c.base == nil {
		return Run(o)
	}
	cfgKey := ""
	if o.Config != nil {
		cfgKey = fmt.Sprintf("%+v", *o.Config)
	}
	key := fmt.Sprintf("%s|%d|%d|%d|%d|%v|%v|%d|%v|%s",
		o.Workload.Name, o.Seed, o.WarmCycles, o.MeasureCycles,
		o.FPInterval, o.TLB, o.Consistency, o.Threads, o.Kernel, cfgKey)
	return c.base.do(key, func() (Result, error) { return Run(o) })
}

// Observe attaches an observability scope to the campaign. Beyond
// storing it for the sweep and coverage engines, it registers the shared
// warm-state cache's metrics (warmups, store hits/misses, poisoned
// blobs, warmup/restore latency) — which is why callers should use this
// instead of assigning Obs directly.
func (c *ExpConfig) Observe(sc obs.Scope) {
	c.Obs = sc
	if c.warm != nil {
		c.warm.Observe(sc)
	}
}

// coverageWarm picks the warm cache for the coverage campaign: the
// campaign-wide cache when the config has one (so its metrics, wired by
// Observe, also cover coverage trials), else a fresh private cache as
// before. Either way results are bit-identical — warm restore is
// checkpoint-keyed.
func (c ExpConfig) coverageWarm() *WarmCache {
	if c.warm != nil {
		return c.warm
	}
	return NewWarmCache()
}

func (c ExpConfig) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

func (c ExpConfig) runOpts(mode Mode, p workload.Params, seed uint64) Options {
	return Options{
		Mode: mode, Workload: p, Seed: seed,
		WarmCycles: c.WarmCycles, MeasureCycles: c.MeasureCycles,
		Kernel: c.Kernel, Warm: c.warm,
	}
}

// normalized measures mode-vs-nonredundant IPC for one workload across
// the campaign's seeds. The common mutator applies to both the baseline
// and the test run, so system-level knobs (TLB discipline, consistency
// model) configure the whole comparison, as in the paper.
func (c ExpConfig) normalized(p workload.Params, mode Mode, common func(*Options)) (float64, error) {
	base := Options{Mode: ModeNonRedundant, Workload: p,
		WarmCycles: c.WarmCycles, MeasureCycles: c.MeasureCycles,
		Kernel: c.Kernel, Warm: c.warm}
	if common != nil {
		common(&base)
	}
	base.Mode = ModeNonRedundant
	test := base
	test.Mode = mode
	var mp stats.MatchedPair
	for _, seed := range c.Seeds {
		b := base
		b.Seed = seed
		br, err := c.baseline(b)
		if err != nil {
			return 0, err
		}
		tt := test
		tt.Seed = seed
		tr, err := Run(tt)
		if err != nil {
			return 0, err
		}
		mp.Add(br.UserIPC, tr.UserIPC)
	}
	return mp.Mean(), nil
}

// normCell is one normalized-IPC measurement: a workload, a test mode,
// and the option mutations both sides of the matched-pair comparison
// share. It is the configuration type of every normalized-IPC sweep spec.
type normCell struct {
	p    workload.Params
	mode Mode
	muts []func(*Options)
}

// addMut appends copy-on-write, so axis values composing on a shared base
// cell never alias each other's mutator slices across points.
func (c *normCell) addMut(m func(*Options)) {
	muts := make([]func(*Options), len(c.muts), len(c.muts)+1)
	copy(muts, c.muts)
	c.muts = append(muts, m)
}

func (c normCell) apply(o *Options) {
	for _, m := range c.muts {
		m(o)
	}
}

// workloadAxis sweeps the cell's workload over the given profiles.
func workloadAxis(ps []workload.Params) sweep.Axis[normCell] {
	return sweep.NewAxis("workload", ps,
		func(p workload.Params) string { return p.Name },
		func(c *normCell, p workload.Params) { c.p = p })
}

// modeAxis sweeps the cell's execution model.
func modeAxis(modes ...Mode) sweep.Axis[normCell] {
	return sweep.NewAxis("mode", modes, Mode.String,
		func(c *normCell, m Mode) { c.mode = m })
}

// latencyAxis sweeps the comparison latency (0 means a literal zero-cycle
// latency, as on the Figure 6 x-axis).
func latencyAxis(lats []int64) sweep.Axis[normCell] {
	return sweep.NewAxis("latency", lats,
		func(l int64) string { return strconv.FormatInt(l, 10) },
		func(c *normCell, l int64) {
			if l == 0 {
				l = ZeroLatency
			}
			c.addMut(func(o *Options) { o.CompareLatency = l })
		})
}

// phantomAxis sweeps the phantom request strength.
func phantomAxis(phs []Phantom) sweep.Axis[normCell] {
	return sweep.NewAxis("phantom", phs, Phantom.String,
		func(c *normCell, ph Phantom) {
			c.addMut(func(o *Options) { o.Phantom = ph })
		})
}

// runNormalized executes a normalized-IPC sweep spec and returns one
// value per point in point-index order (deterministic at any
// parallelism).
func (c ExpConfig) runNormalized(name string, base normCell, axes ...sweep.Axis[normCell]) ([]float64, error) {
	spec := sweep.Spec[normCell]{Name: name, Base: base, Axes: axes}
	r := sweep.Runner[normCell, float64]{
		Parallelism: c.Parallelism,
		Obs:         c.Obs,
		Run: func(_ context.Context, pt sweep.Point[normCell]) (float64, error) {
			return c.normalized(pt.Config.p, pt.Config.mode, pt.Config.apply)
		},
	}
	results, err := r.Sweep(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	return sweep.Outputs(results)
}

// runDirect executes a sweep of raw simulation runs (no baseline
// normalization), as the event-rate experiments need.
func (c ExpConfig) runDirect(name string, base Options, axes ...sweep.Axis[Options]) ([]Result, error) {
	spec := sweep.Spec[Options]{Name: name, Base: base, Axes: axes}
	r := sweep.Runner[Options, Result]{
		Parallelism: c.Parallelism,
		Obs:         c.Obs,
		Run: func(_ context.Context, pt sweep.Point[Options]) (Result, error) {
			return Run(pt.Config)
		},
	}
	results, err := r.Sweep(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	return sweep.Outputs(results)
}

// WorkloadRow is one workload's entry in a figure.
type WorkloadRow struct {
	Workload string
	Class    workload.Class
	Values   map[string]float64
}

// Figure5Result reproduces Figure 5: normalized IPC of Strict and Reunion
// at a 10-cycle comparison latency, per workload.
type Figure5Result struct {
	Rows []WorkloadRow
}

// Figure5 runs the Figure 5 experiment: workload × {strict, reunion} at a
// fixed 10-cycle comparison latency.
func (c ExpConfig) Figure5() (*Figure5Result, error) {
	c.printf("Figure 5: baseline performance of redundant execution (normalized IPC, 10-cycle comparison latency)\n")
	c.printf("%-12s %-10s %8s %8s\n", "workload", "class", "strict", "reunion")
	suite := workload.Suite()
	modes := []Mode{ModeStrict, ModeReunion}
	var base normCell
	base.addMut(func(o *Options) { o.CompareLatency = 10 })
	vals, err := c.runNormalized("figure5", base, workloadAxis(suite), modeAxis(modes...))
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{}
	for wi, p := range suite {
		row := WorkloadRow{Workload: p.Name, Class: p.Class,
			Values: map[string]float64{
				"strict":  vals[wi*len(modes)+0],
				"reunion": vals[wi*len(modes)+1],
			}}
		res.Rows = append(res.Rows, row)
		c.printf("%-12s %-10s %8.3f %8.3f\n", p.Name, p.Class,
			row.Values["strict"], row.Values["reunion"])
	}
	for _, cls := range workload.Classes() {
		c.printf("%-12s %-10s %8.3f %8.3f\n", "avg", cls,
			res.ClassMean(cls, "strict"), res.ClassMean(cls, "reunion"))
	}
	return res, nil
}

// ClassMean averages a series over a workload class (geometric mean, as
// normalized ratios should be averaged).
func (f *Figure5Result) ClassMean(cls workload.Class, key string) float64 {
	var xs []float64
	for _, r := range f.Rows {
		if r.Class == cls {
			xs = append(xs, r.Values[key])
		}
	}
	return stats.GeoMean(xs)
}

// LatencySweepResult reproduces Figure 6(a) or 6(b): normalized IPC per
// workload class over comparison latencies.
type LatencySweepResult struct {
	Mode      Mode
	Latencies []int64
	// Series[class][i] is the class-average normalized IPC at Latencies[i].
	Series map[workload.Class][]float64
}

// Figure6Latencies is the x-axis of Figure 6.
var Figure6Latencies = []int64{0, 10, 20, 30, 40}

// Figure6 runs the comparison-latency sensitivity sweep for one execution
// model: Figure 6(a) with ModeStrict, Figure 6(b) with ModeReunion. The
// spec is workload × latency.
func (c ExpConfig) Figure6(mode Mode) (*LatencySweepResult, error) {
	c.printf("Figure 6(%s): %v normalized IPC vs comparison latency\n",
		map[Mode]string{ModeStrict: "a", ModeReunion: "b"}[mode], mode)
	suite := workload.Suite()
	res := &LatencySweepResult{Mode: mode, Latencies: Figure6Latencies,
		Series: make(map[workload.Class][]float64)}
	vals, err := c.runNormalized("figure6-"+mode.String(), normCell{mode: mode},
		workloadAxis(suite), latencyAxis(res.Latencies))
	if err != nil {
		return nil, err
	}
	nl := len(res.Latencies)
	perClass := make(map[workload.Class][][]float64) // class -> lat idx -> values
	for wi, p := range suite {
		if perClass[p.Class] == nil {
			perClass[p.Class] = make([][]float64, nl)
		}
		for li := 0; li < nl; li++ {
			perClass[p.Class][li] = append(perClass[p.Class][li], vals[wi*nl+li])
		}
	}
	c.printf("%-10s", "class")
	for _, lat := range res.Latencies {
		c.printf(" %7dc", lat)
	}
	c.printf("\n")
	for _, cls := range workload.Classes() {
		series := make([]float64, nl)
		for i := range series {
			series[i] = stats.GeoMean(perClass[cls][i])
		}
		res.Series[cls] = series
		c.printf("%-10s", cls)
		for _, v := range series {
			c.printf(" %8.3f", v)
		}
		c.printf("\n")
	}
	return res, nil
}

// Table3Row is one workload's entry in Table 3.
type Table3Row struct {
	Workload string
	Class    workload.Class
	// IncoherencePerM maps phantom strength name -> input incoherence
	// events per million retired instructions.
	IncoherencePerM map[string]float64
	TLBMissPerM     float64
}

// Table3Result reproduces Table 3: input incoherence events per million
// instructions per phantom strength, with TLB misses as the comparison
// point.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs the input-incoherence frequency experiment: a direct-run
// sweep of workload × phantom strength over the extended event window.
func (c ExpConfig) Table3() (*Table3Result, error) {
	c.printf("Table 3: input incoherence events per 1M instructions (10-cycle comparison latency)\n")
	c.printf("%-12s %10s %10s %10s %12s\n", "workload", "global", "shared", "null", "TLB misses")
	suite := workload.Suite()
	phantoms := []Phantom{PhantomGlobal, PhantomShared, PhantomNull}
	base := c.runOpts(ModeReunion, workload.Params{}, c.Seeds[0])
	base.CompareLatency = 10
	base.MeasureCycles = c.Table3Cycles
	runs, err := c.runDirect("table3", base,
		sweep.NewAxis("workload", suite,
			func(p workload.Params) string { return p.Name },
			func(o *Options, p workload.Params) { o.Workload = p }),
		sweep.NewAxis("phantom", phantoms, Phantom.String,
			func(o *Options, ph Phantom) { o.Phantom = ph }),
	)
	if err != nil {
		return nil, err
	}
	res := &Table3Result{}
	for wi, p := range suite {
		row := Table3Row{Workload: p.Name, Class: p.Class,
			IncoherencePerM: make(map[string]float64)}
		for pi, ph := range phantoms {
			r := runs[wi*len(phantoms)+pi]
			row.IncoherencePerM[ph.String()] = r.IncoherencePerM
			if ph == PhantomGlobal {
				row.TLBMissPerM = r.TLBMissPerM
			}
		}
		res.Rows = append(res.Rows, row)
		c.printf("%-12s %10.1f %10.1f %10.1f %12.0f\n", p.Name,
			row.IncoherencePerM["global"], row.IncoherencePerM["shared"],
			row.IncoherencePerM["null"], row.TLBMissPerM)
	}
	return res, nil
}

// Figure7aResult reproduces Figure 7(a): Reunion normalized IPC per
// phantom request strength.
type Figure7aResult struct {
	Rows []WorkloadRow // Values keyed by phantom strength name
}

// Figure7a runs the phantom-strength performance experiment: workload ×
// phantom strength under ModeReunion.
func (c ExpConfig) Figure7a() (*Figure7aResult, error) {
	c.printf("Figure 7(a): Reunion normalized IPC per phantom request strength (10-cycle comparison latency)\n")
	c.printf("%-12s %8s %8s %8s\n", "workload", "global", "shared", "null")
	suite := workload.Suite()
	phantoms := []Phantom{PhantomGlobal, PhantomShared, PhantomNull}
	base := normCell{mode: ModeReunion}
	base.addMut(func(o *Options) { o.CompareLatency = 10 })
	vals, err := c.runNormalized("figure7a", base,
		workloadAxis(suite), phantomAxis(phantoms))
	if err != nil {
		return nil, err
	}
	res := &Figure7aResult{}
	for wi, p := range suite {
		row := WorkloadRow{Workload: p.Name, Class: p.Class, Values: make(map[string]float64)}
		for pi, ph := range phantoms {
			row.Values[ph.String()] = vals[wi*len(phantoms)+pi]
		}
		res.Rows = append(res.Rows, row)
		c.printf("%-12s %8.3f %8.3f %8.3f\n", p.Name,
			row.Values["global"], row.Values["shared"], row.Values["null"])
	}
	return res, nil
}

// Figure7bResult reproduces Figure 7(b): commercial-workload average
// normalized IPC with hardware- vs software-managed TLBs across
// comparison latencies.
type Figure7bResult struct {
	Latencies []int64
	Hardware  []float64
	Software  []float64
}

// Figure7b runs the TLB-discipline experiment over commercial workloads:
// TLB mode × latency × workload, class-averaged per (mode, latency).
func (c ExpConfig) Figure7b() (*Figure7bResult, error) {
	c.printf("Figure 7(b): Reunion commercial average, hardware vs software-managed TLB\n")
	res := &Figure7bResult{Latencies: Figure6Latencies}
	commercial := commercialSuite()
	tlbs := []TLBMode{TLBHardware, TLBSoftware}
	vals, err := c.runNormalized("figure7b", normCell{mode: ModeReunion},
		sweep.NewAxis("tlb", tlbs, TLBMode.String,
			func(cell *normCell, m TLBMode) {
				cell.addMut(func(o *Options) { o.TLB = m })
			}),
		latencyAxis(res.Latencies),
		workloadAxis(commercial),
	)
	if err != nil {
		return nil, err
	}
	nl, nw := len(res.Latencies), len(commercial)
	for ti := range tlbs {
		series := make([]float64, nl)
		for li := 0; li < nl; li++ {
			var ws []float64
			for wi := 0; wi < nw; wi++ {
				ws = append(ws, vals[(ti*nl+li)*nw+wi])
			}
			series[li] = stats.GeoMean(ws)
		}
		if tlbs[ti] == TLBHardware {
			res.Hardware = series
		} else {
			res.Software = series
		}
	}
	c.printf("%-10s", "TLB")
	for _, lat := range res.Latencies {
		c.printf(" %7dc", lat)
	}
	c.printf("\n%-10s", "hardware")
	for _, v := range res.Hardware {
		c.printf(" %8.3f", v)
	}
	c.printf("\n%-10s", "software")
	for _, v := range res.Software {
		c.printf(" %8.3f", v)
	}
	c.printf("\n")
	return res, nil
}

// SCResult reproduces the §5.5 consistency-model result: performance under
// sequential consistency, where every store serializes retirement.
type SCResult struct {
	Latencies []int64
	TSO       []float64
	SC        []float64
}

// SCExperiment measures the store-serialization cost of SC on commercial
// workloads under Reunion: consistency × latency × workload.
func (c ExpConfig) SCExperiment() (*SCResult, error) {
	c.printf("§5.5: Reunion commercial average under TSO vs sequential consistency\n")
	res := &SCResult{Latencies: []int64{0, 10, 20, 30, 40}}
	commercial := commercialSuite()
	models := []Consistency{TSO, SC}
	vals, err := c.runNormalized("sc", normCell{mode: ModeReunion},
		sweep.NewAxis("consistency", models, ConsistencyName,
			func(cell *normCell, m Consistency) {
				cell.addMut(func(o *Options) { o.Consistency = m })
			}),
		latencyAxis(res.Latencies),
		workloadAxis(commercial),
	)
	if err != nil {
		return nil, err
	}
	nl, nw := len(res.Latencies), len(commercial)
	for mi := range models {
		series := make([]float64, nl)
		for li := 0; li < nl; li++ {
			var ws []float64
			for wi := 0; wi < nw; wi++ {
				ws = append(ws, vals[(mi*nl+li)*nw+wi])
			}
			series[li] = stats.GeoMean(ws)
		}
		if models[mi] == TSO {
			res.TSO = series
		} else {
			res.SC = series
		}
	}
	c.printf("%-10s", "model")
	for _, lat := range res.Latencies {
		c.printf(" %7dc", lat)
	}
	c.printf("\n%-10s", "TSO")
	for _, v := range res.TSO {
		c.printf(" %8.3f", v)
	}
	c.printf("\n%-10s", "SC")
	for _, v := range res.SC {
		c.printf(" %8.3f", v)
	}
	c.printf("\n")
	return res, nil
}

// FPIntervalResult is the fingerprint-interval ablation (§4.3 reports that
// intervals of 1 and 50 instructions perform indistinguishably).
type FPIntervalResult struct {
	Intervals []int
	Reunion   []float64 // commercial-average normalized IPC per interval
}

// FPIntervalAblation sweeps the fingerprint comparison interval:
// interval × commercial workload.
func (c ExpConfig) FPIntervalAblation() (*FPIntervalResult, error) {
	c.printf("Ablation (§4.3): fingerprint interval sensitivity, Reunion commercial average\n")
	res := &FPIntervalResult{Intervals: []int{1, 5, 10, 50}}
	commercial := commercialSuite()
	base := normCell{mode: ModeReunion}
	base.addMut(func(o *Options) { o.CompareLatency = 10 })
	vals, err := c.runNormalized("fp-interval", base,
		sweep.NewAxis("interval", res.Intervals, strconv.Itoa,
			func(cell *normCell, iv int) {
				cell.addMut(func(o *Options) { o.FPInterval = iv })
			}),
		workloadAxis(commercial),
	)
	if err != nil {
		return nil, err
	}
	nw := len(commercial)
	for ii, iv := range res.Intervals {
		res.Reunion = append(res.Reunion, stats.GeoMean(vals[ii*nw:(ii+1)*nw]))
		c.printf("interval %3d: %7.3f\n", iv, res.Reunion[len(res.Reunion)-1])
	}
	return res, nil
}

// ROBSweepResult is the §5.2 ablation: "larger speculation windows (e.g.,
// thousands of instructions, as in checkpointing architectures) completely
// eliminate the resource occupancy bottleneck, but cannot relieve stalls
// from serializing instructions." Sweeping the window size at a 40-cycle
// comparison latency, scientific workloads (occupancy-bound) recover while
// commercial workloads (serialization-bound) stay limited.
type ROBSweepResult struct {
	Sizes      []int
	Commercial []float64 // Strict normalized IPC at 40-cycle latency
	Scientific []float64
}

// ROBSweep runs the speculation-window ablation: window size × workload.
func (c ExpConfig) ROBSweep() (*ROBSweepResult, error) {
	c.printf("Ablation (§5.2): speculation window size, Strict @40-cycle latency\n")
	res := &ROBSweepResult{Sizes: []int{128, 256, 1024, 4096}}
	suite := workload.Suite()
	base := normCell{mode: ModeStrict}
	base.addMut(func(o *Options) { o.CompareLatency = 40 })
	vals, err := c.runNormalized("rob-sweep", base,
		sweep.NewAxis("window", res.Sizes, strconv.Itoa,
			func(cell *normCell, sz int) {
				cell.addMut(func(o *Options) {
					cfg := DefaultConfig()
					cfg.Core.ROBSize = sz
					cfg.Core.CheckQCap = sz
					o.Config = &cfg
				})
			}),
		workloadAxis(suite),
	)
	if err != nil {
		return nil, err
	}
	nw := len(suite)
	for si, size := range res.Sizes {
		var comm, sci []float64
		for wi, p := range suite {
			v := vals[si*nw+wi]
			if p.Class == workload.Scientific {
				sci = append(sci, v)
			} else {
				comm = append(comm, v)
			}
		}
		res.Commercial = append(res.Commercial, stats.GeoMean(comm))
		res.Scientific = append(res.Scientific, stats.GeoMean(sci))
		c.printf("window %5d: commercial %.3f  scientific %.3f\n",
			size, res.Commercial[len(res.Commercial)-1], res.Scientific[len(res.Scientific)-1])
	}
	return res, nil
}

// TopologyResult is the §4.1 ablation: the Reunion execution model at a
// snoopy cache interface (Montecito-style private caches on a bus) versus
// the directory-based shared L2 baseline. Absolute performance differs
// (no shared cache), but the redundancy overhead carries over.
type TopologyResult struct {
	Topologies []Topology
	Commercial []float64 // Reunion normalized IPC @10c
	Scientific []float64
}

// TopologyAblation measures Reunion's overhead under both memory-system
// organizations: topology × workload.
func (c ExpConfig) TopologyAblation() (*TopologyResult, error) {
	c.printf("Ablation (§4.1): Reunion normalized IPC by memory-system topology (10-cycle latency)\n")
	res := &TopologyResult{Topologies: []Topology{TopologyDirectory, TopologySnoopy}}
	suite := workload.Suite()
	base := normCell{mode: ModeReunion}
	base.addMut(func(o *Options) { o.CompareLatency = 10 })
	vals, err := c.runNormalized("topology", base,
		sweep.NewAxis("topology", res.Topologies, Topology.String,
			func(cell *normCell, tp Topology) {
				cell.addMut(func(o *Options) {
					cfg := DefaultConfig()
					cfg.Topology = tp
					o.Config = &cfg
				})
			}),
		workloadAxis(suite),
	)
	if err != nil {
		return nil, err
	}
	nw := len(suite)
	for ti, topo := range res.Topologies {
		var comm, sci []float64
		for wi, p := range suite {
			v := vals[ti*nw+wi]
			if p.Class == workload.Scientific {
				sci = append(sci, v)
			} else {
				comm = append(comm, v)
			}
		}
		res.Commercial = append(res.Commercial, stats.GeoMean(comm))
		res.Scientific = append(res.Scientific, stats.GeoMean(sci))
		c.printf("%-10s: commercial %.3f  scientific %.3f\n",
			topo, res.Commercial[len(res.Commercial)-1], res.Scientific[len(res.Scientific)-1])
	}
	return res, nil
}

func commercialSuite() []workload.Params {
	var out []workload.Params
	for _, p := range workload.Suite() {
		if p.Class != workload.Scientific {
			out = append(out, p)
		}
	}
	return out
}

// CoverageExperiment runs the Monte-Carlo fault-injection coverage
// campaign the paper's evaluation assumes but never performs: single-bit
// datapath flips over mode × phantom × workload, every trial classified
// as masked, detected (with latency), SDC, or DUE against a fault-free
// golden run. The mode and phantom axes are excluded from the fault-
// stream draw, so Reunion and the non-redundant baseline face identical
// fault streams — the controlled comparison behind "Reunion: zero SDCs,
// non-redundant: silent corruption".
func (c ExpConfig) CoverageExperiment(trialsPerCell int) (*campaign.Report, error) {
	c.printf("Coverage: Monte-Carlo fault injection, mode × phantom × workload (%d trials/cell)\n", trialsPerCell)
	target := c.MeasureCycles / 16
	if target < 500 {
		target = 500
	}
	base := Options{
		Seed:         c.Seeds[0],
		WarmCycles:   c.WarmCycles,
		CommitTarget: target,
		Kernel:       c.Kernel,
	}
	model := campaign.FaultModel{WindowHi: target}
	eng := campaign.Engine[Options]{
		Spec: campaign.Spec[Options]{
			Name: "coverage",
			Matrix: sweep.Spec[Options]{
				Name: "coverage",
				Base: base,
				Axes: []sweep.Axis[Options]{
					sweep.NewAxis("mode", []Mode{ModeReunion, ModeNonRedundant}, Mode.String,
						func(o *Options, m Mode) { o.Mode = m }),
					sweep.NewAxis("phantom", []Phantom{PhantomGlobal, PhantomNull}, Phantom.String,
						func(o *Options, ph Phantom) { o.Phantom = ph }),
					sweep.NewAxis("workload", workload.Suite(),
						func(p workload.Params) string { return p.Name },
						func(o *Options, p workload.Params) { o.Workload = p }),
				},
			},
			Model:         model,
			Trials:        trialsPerCell,
			Seed:          0xfa017,
			StreamExclude: []string{"mode", "phantom"},
		},
		RunTrial:    TrialRunnerWarm(model, c.coverageWarm()),
		Parallelism: c.Parallelism,
		Obs:         c.Obs,
	}
	if err := eng.Spec.Validate(); err != nil {
		return nil, err
	}
	if c.NShards > 1 || c.Shard != 0 {
		trials := eng.Spec.Trials
		if trials < 1 {
			trials = 1
		}
		plan, err := dist.NewPlan(eng.Spec.Name, eng.Spec.Matrix.Size()*trials, c.Shard, c.NShards)
		if err != nil {
			return nil, err
		}
		eng.Indices = plan.Indices()
		c.printf("%s: %d of %d trials\n", plan, plan.Count(), plan.Total)
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		return nil, err
	}
	if c.Out != nil {
		rep.WriteTable(c.Out)
	}
	return rep, nil
}
