package reunion

import (
	"fmt"
	"io"

	"reunion/internal/stats"
	"reunion/internal/workload"
)

// ExpConfig sizes an experiment campaign. Quick settings keep `go test
// -bench` affordable; Full settings match the paper's methodology more
// closely (longer windows, several matched seeds).
type ExpConfig struct {
	Seeds         []uint64
	WarmCycles    int64
	MeasureCycles int64
	// Table3Cycles extends the measurement window for event-rate
	// experiments (input incoherence under global phantoms is rare, so it
	// needs long windows to count).
	Table3Cycles int64
	Out          io.Writer

	// baseCache memoizes non-redundant baseline runs: sweeps reuse the
	// same baseline across latencies and modes.
	baseCache map[string]Result
}

// QuickExp returns a campaign sized for CI and `go test -bench`.
func QuickExp(out io.Writer) ExpConfig {
	return ExpConfig{
		Seeds:         DefaultSeeds(1),
		WarmCycles:    40_000,
		MeasureCycles: 30_000,
		Table3Cycles:  120_000,
		Out:           out,
		baseCache:     make(map[string]Result),
	}
}

// FullExp returns a campaign sized like the paper's sampling methodology.
func FullExp(out io.Writer) ExpConfig {
	return ExpConfig{
		Seeds:         DefaultSeeds(3),
		WarmCycles:    100_000,
		MeasureCycles: 50_000,
		Table3Cycles:  400_000,
		Out:           out,
		baseCache:     make(map[string]Result),
	}
}

func (c ExpConfig) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

func (c ExpConfig) runOpts(mode Mode, p workload.Params, seed uint64) Options {
	return Options{
		Mode: mode, Workload: p, Seed: seed,
		WarmCycles: c.WarmCycles, MeasureCycles: c.MeasureCycles,
	}
}

// normalized measures mode-vs-nonredundant IPC for one workload across
// the campaign's seeds. The common mutator applies to both the baseline
// and the test run, so system-level knobs (TLB discipline, consistency
// model) configure the whole comparison, as in the paper.
func (c ExpConfig) normalized(p workload.Params, mode Mode, common func(*Options)) (float64, error) {
	base := Options{Mode: ModeNonRedundant, Workload: p,
		WarmCycles: c.WarmCycles, MeasureCycles: c.MeasureCycles}
	if common != nil {
		common(&base)
	}
	base.Mode = ModeNonRedundant
	test := base
	test.Mode = mode
	var mp stats.MatchedPair
	for _, seed := range c.Seeds {
		b := base
		b.Seed = seed
		cfgKey := ""
		if b.Config != nil {
			cfgKey = fmt.Sprintf("%+v", *b.Config)
		}
		key := fmt.Sprintf("%s|%d|%d|%d|%d|%v|%v|%d|%s",
			p.Name, seed, b.WarmCycles, b.MeasureCycles, b.FPInterval, b.TLB, b.Consistency, b.Threads, cfgKey)
		br, ok := c.baseCache[key]
		if !ok {
			var err error
			br, err = Run(b)
			if err != nil {
				return 0, err
			}
			if c.baseCache != nil {
				c.baseCache[key] = br
			}
		}
		tt := test
		tt.Seed = seed
		tr, err := Run(tt)
		if err != nil {
			return 0, err
		}
		mp.Add(br.UserIPC, tr.UserIPC)
	}
	return mp.Mean(), nil
}

// WorkloadRow is one workload's entry in a figure.
type WorkloadRow struct {
	Workload string
	Class    workload.Class
	Values   map[string]float64
}

// Figure5Result reproduces Figure 5: normalized IPC of Strict and Reunion
// at a 10-cycle comparison latency, per workload.
type Figure5Result struct {
	Rows []WorkloadRow
}

// Figure5 runs the Figure 5 experiment.
func (c ExpConfig) Figure5() (*Figure5Result, error) {
	c.printf("Figure 5: baseline performance of redundant execution (normalized IPC, 10-cycle comparison latency)\n")
	c.printf("%-12s %-10s %8s %8s\n", "workload", "class", "strict", "reunion")
	res := &Figure5Result{}
	for _, p := range workload.Suite() {
		s, err := c.normalized(p, ModeStrict, func(o *Options) { o.CompareLatency = 10 })
		if err != nil {
			return nil, err
		}
		r, err := c.normalized(p, ModeReunion, func(o *Options) { o.CompareLatency = 10 })
		if err != nil {
			return nil, err
		}
		row := WorkloadRow{Workload: p.Name, Class: p.Class,
			Values: map[string]float64{"strict": s, "reunion": r}}
		res.Rows = append(res.Rows, row)
		c.printf("%-12s %-10s %8.3f %8.3f\n", p.Name, p.Class, s, r)
	}
	for _, cls := range workload.Classes() {
		c.printf("%-12s %-10s %8.3f %8.3f\n", "avg", cls,
			res.ClassMean(cls, "strict"), res.ClassMean(cls, "reunion"))
	}
	return res, nil
}

// ClassMean averages a series over a workload class (geometric mean, as
// normalized ratios should be averaged).
func (f *Figure5Result) ClassMean(cls workload.Class, key string) float64 {
	var xs []float64
	for _, r := range f.Rows {
		if r.Class == cls {
			xs = append(xs, r.Values[key])
		}
	}
	return stats.GeoMean(xs)
}

// LatencySweepResult reproduces Figure 6(a) or 6(b): normalized IPC per
// workload class over comparison latencies.
type LatencySweepResult struct {
	Mode      Mode
	Latencies []int64
	// Series[class][i] is the class-average normalized IPC at Latencies[i].
	Series map[workload.Class][]float64
}

// Figure6Latencies is the x-axis of Figure 6.
var Figure6Latencies = []int64{0, 10, 20, 30, 40}

// Figure6 runs the comparison-latency sensitivity sweep for one execution
// model: Figure 6(a) with ModeStrict, Figure 6(b) with ModeReunion.
func (c ExpConfig) Figure6(mode Mode) (*LatencySweepResult, error) {
	c.printf("Figure 6(%s): %v normalized IPC vs comparison latency\n",
		map[Mode]string{ModeStrict: "a", ModeReunion: "b"}[mode], mode)
	res := &LatencySweepResult{Mode: mode, Latencies: Figure6Latencies,
		Series: make(map[workload.Class][]float64)}
	perClass := make(map[workload.Class][][]float64) // class -> lat idx -> values
	for _, p := range workload.Suite() {
		for i, lat := range res.Latencies {
			l := lat
			if l == 0 {
				l = ZeroLatency
			}
			v, err := c.normalized(p, mode, func(o *Options) { o.CompareLatency = l })
			if err != nil {
				return nil, err
			}
			if perClass[p.Class] == nil {
				perClass[p.Class] = make([][]float64, len(res.Latencies))
			}
			perClass[p.Class][i] = append(perClass[p.Class][i], v)
		}
	}
	c.printf("%-10s", "class")
	for _, lat := range res.Latencies {
		c.printf(" %7dc", lat)
	}
	c.printf("\n")
	for _, cls := range workload.Classes() {
		series := make([]float64, len(res.Latencies))
		for i := range res.Latencies {
			series[i] = stats.GeoMean(perClass[cls][i])
		}
		res.Series[cls] = series
		c.printf("%-10s", cls)
		for _, v := range series {
			c.printf(" %8.3f", v)
		}
		c.printf("\n")
	}
	return res, nil
}

// Table3Row is one workload's entry in Table 3.
type Table3Row struct {
	Workload string
	Class    workload.Class
	// IncoherencePerM maps phantom strength name -> input incoherence
	// events per million retired instructions.
	IncoherencePerM map[string]float64
	TLBMissPerM     float64
}

// Table3Result reproduces Table 3: input incoherence events per million
// instructions per phantom strength, with TLB misses as the comparison
// point.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs the input-incoherence frequency experiment.
func (c ExpConfig) Table3() (*Table3Result, error) {
	c.printf("Table 3: input incoherence events per 1M instructions (10-cycle comparison latency)\n")
	c.printf("%-12s %10s %10s %10s %12s\n", "workload", "global", "shared", "null", "TLB misses")
	res := &Table3Result{}
	for _, p := range workload.Suite() {
		row := Table3Row{Workload: p.Name, Class: p.Class,
			IncoherencePerM: make(map[string]float64)}
		for _, ph := range []Phantom{PhantomGlobal, PhantomShared, PhantomNull} {
			o := c.runOpts(ModeReunion, p, c.Seeds[0])
			o.Phantom = ph
			o.CompareLatency = 10
			o.MeasureCycles = c.Table3Cycles
			r, err := Run(o)
			if err != nil {
				return nil, err
			}
			row.IncoherencePerM[ph.String()] = r.IncoherencePerM
			if ph == PhantomGlobal {
				row.TLBMissPerM = r.TLBMissPerM
			}
		}
		res.Rows = append(res.Rows, row)
		c.printf("%-12s %10.1f %10.1f %10.1f %12.0f\n", p.Name,
			row.IncoherencePerM["global"], row.IncoherencePerM["shared"],
			row.IncoherencePerM["null"], row.TLBMissPerM)
	}
	return res, nil
}

// Figure7aResult reproduces Figure 7(a): Reunion normalized IPC per
// phantom request strength.
type Figure7aResult struct {
	Rows []WorkloadRow // Values keyed by phantom strength name
}

// Figure7a runs the phantom-strength performance experiment.
func (c ExpConfig) Figure7a() (*Figure7aResult, error) {
	c.printf("Figure 7(a): Reunion normalized IPC per phantom request strength (10-cycle comparison latency)\n")
	c.printf("%-12s %8s %8s %8s\n", "workload", "global", "shared", "null")
	res := &Figure7aResult{}
	for _, p := range workload.Suite() {
		row := WorkloadRow{Workload: p.Name, Class: p.Class, Values: make(map[string]float64)}
		for _, ph := range []Phantom{PhantomGlobal, PhantomShared, PhantomNull} {
			phc := ph
			v, err := c.normalized(p, ModeReunion, func(o *Options) {
				o.CompareLatency = 10
				o.Phantom = phc
			})
			if err != nil {
				return nil, err
			}
			row.Values[ph.String()] = v
		}
		res.Rows = append(res.Rows, row)
		c.printf("%-12s %8.3f %8.3f %8.3f\n", p.Name,
			row.Values["global"], row.Values["shared"], row.Values["null"])
	}
	return res, nil
}

// Figure7bResult reproduces Figure 7(b): commercial-workload average
// normalized IPC with hardware- vs software-managed TLBs across
// comparison latencies.
type Figure7bResult struct {
	Latencies []int64
	Hardware  []float64
	Software  []float64
}

// Figure7b runs the TLB-discipline experiment over commercial workloads.
func (c ExpConfig) Figure7b() (*Figure7bResult, error) {
	c.printf("Figure 7(b): Reunion commercial average, hardware vs software-managed TLB\n")
	res := &Figure7bResult{Latencies: Figure6Latencies}
	commercial := commercialSuite()
	for _, tlbMode := range []TLBMode{TLBHardware, TLBSoftware} {
		var series []float64
		for _, lat := range res.Latencies {
			l := lat
			if l == 0 {
				l = ZeroLatency
			}
			var vals []float64
			for _, p := range commercial {
				tm := tlbMode
				v, err := c.normalized(p, ModeReunion, func(o *Options) {
					o.CompareLatency = l
					o.TLB = tm
				})
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
			series = append(series, stats.GeoMean(vals))
		}
		if tlbMode == TLBHardware {
			res.Hardware = series
		} else {
			res.Software = series
		}
	}
	c.printf("%-10s", "TLB")
	for _, lat := range res.Latencies {
		c.printf(" %7dc", lat)
	}
	c.printf("\n%-10s", "hardware")
	for _, v := range res.Hardware {
		c.printf(" %8.3f", v)
	}
	c.printf("\n%-10s", "software")
	for _, v := range res.Software {
		c.printf(" %8.3f", v)
	}
	c.printf("\n")
	return res, nil
}

// SCResult reproduces the §5.5 consistency-model result: performance under
// sequential consistency, where every store serializes retirement.
type SCResult struct {
	Latencies []int64
	TSO       []float64
	SC        []float64
}

// SCExperiment measures the store-serialization cost of SC on commercial
// workloads under Reunion.
func (c ExpConfig) SCExperiment() (*SCResult, error) {
	c.printf("§5.5: Reunion commercial average under TSO vs sequential consistency\n")
	res := &SCResult{Latencies: []int64{0, 10, 20, 30, 40}}
	commercial := commercialSuite()
	for _, cons := range []Consistency{TSO, SC} {
		var series []float64
		for _, lat := range res.Latencies {
			l := lat
			if l == 0 {
				l = ZeroLatency
			}
			var vals []float64
			for _, p := range commercial {
				cc := cons
				v, err := c.normalized(p, ModeReunion, func(o *Options) {
					o.CompareLatency = l
					o.Consistency = cc
				})
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
			series = append(series, stats.GeoMean(vals))
		}
		if cons == TSO {
			res.TSO = series
		} else {
			res.SC = series
		}
	}
	c.printf("%-10s", "model")
	for _, lat := range res.Latencies {
		c.printf(" %7dc", lat)
	}
	c.printf("\n%-10s", "TSO")
	for _, v := range res.TSO {
		c.printf(" %8.3f", v)
	}
	c.printf("\n%-10s", "SC")
	for _, v := range res.SC {
		c.printf(" %8.3f", v)
	}
	c.printf("\n")
	return res, nil
}

// FPIntervalResult is the fingerprint-interval ablation (§4.3 reports that
// intervals of 1 and 50 instructions perform indistinguishably).
type FPIntervalResult struct {
	Intervals []int
	Reunion   []float64 // commercial-average normalized IPC per interval
}

// FPIntervalAblation sweeps the fingerprint comparison interval.
func (c ExpConfig) FPIntervalAblation() (*FPIntervalResult, error) {
	c.printf("Ablation (§4.3): fingerprint interval sensitivity, Reunion commercial average\n")
	res := &FPIntervalResult{Intervals: []int{1, 5, 10, 50}}
	commercial := commercialSuite()
	for _, iv := range res.Intervals {
		var vals []float64
		for _, p := range commercial {
			ivc := iv
			v, err := c.normalized(p, ModeReunion, func(o *Options) {
				o.CompareLatency = 10
				o.FPInterval = ivc
			})
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
		res.Reunion = append(res.Reunion, stats.GeoMean(vals))
		c.printf("interval %3d: %7.3f\n", iv, res.Reunion[len(res.Reunion)-1])
	}
	return res, nil
}

// ROBSweepResult is the §5.2 ablation: "larger speculation windows (e.g.,
// thousands of instructions, as in checkpointing architectures) completely
// eliminate the resource occupancy bottleneck, but cannot relieve stalls
// from serializing instructions." Sweeping the window size at a 40-cycle
// comparison latency, scientific workloads (occupancy-bound) recover while
// commercial workloads (serialization-bound) stay limited.
type ROBSweepResult struct {
	Sizes      []int
	Commercial []float64 // Strict normalized IPC at 40-cycle latency
	Scientific []float64
}

// ROBSweep runs the speculation-window ablation.
func (c ExpConfig) ROBSweep() (*ROBSweepResult, error) {
	c.printf("Ablation (§5.2): speculation window size, Strict @40-cycle latency\n")
	res := &ROBSweepResult{Sizes: []int{128, 256, 1024, 4096}}
	for _, size := range res.Sizes {
		var comm, sci []float64
		for _, p := range workload.Suite() {
			sz := size
			v, err := c.normalized(p, ModeStrict, func(o *Options) {
				o.CompareLatency = 40
				cfg := DefaultConfig()
				cfg.Core.ROBSize = sz
				cfg.Core.CheckQCap = sz
				o.Config = &cfg
			})
			if err != nil {
				return nil, err
			}
			if p.Class == workload.Scientific {
				sci = append(sci, v)
			} else {
				comm = append(comm, v)
			}
		}
		res.Commercial = append(res.Commercial, stats.GeoMean(comm))
		res.Scientific = append(res.Scientific, stats.GeoMean(sci))
		c.printf("window %5d: commercial %.3f  scientific %.3f\n",
			size, res.Commercial[len(res.Commercial)-1], res.Scientific[len(res.Scientific)-1])
	}
	return res, nil
}

// TopologyResult is the §4.1 ablation: the Reunion execution model at a
// snoopy cache interface (Montecito-style private caches on a bus) versus
// the directory-based shared L2 baseline. Absolute performance differs
// (no shared cache), but the redundancy overhead carries over.
type TopologyResult struct {
	Topologies []Topology
	Commercial []float64 // Reunion normalized IPC @10c
	Scientific []float64
}

// TopologyAblation measures Reunion's overhead under both memory-system
// organizations.
func (c ExpConfig) TopologyAblation() (*TopologyResult, error) {
	c.printf("Ablation (§4.1): Reunion normalized IPC by memory-system topology (10-cycle latency)\n")
	res := &TopologyResult{Topologies: []Topology{TopologyDirectory, TopologySnoopy}}
	for _, topo := range res.Topologies {
		var comm, sci []float64
		for _, p := range workload.Suite() {
			tp := topo
			v, err := c.normalized(p, ModeReunion, func(o *Options) {
				o.CompareLatency = 10
				cfg := DefaultConfig()
				cfg.Topology = tp
				o.Config = &cfg
			})
			if err != nil {
				return nil, err
			}
			if p.Class == workload.Scientific {
				sci = append(sci, v)
			} else {
				comm = append(comm, v)
			}
		}
		res.Commercial = append(res.Commercial, stats.GeoMean(comm))
		res.Scientific = append(res.Scientific, stats.GeoMean(sci))
		c.printf("%-10s: commercial %.3f  scientific %.3f\n",
			topo, res.Commercial[len(res.Commercial)-1], res.Scientific[len(res.Scientific)-1])
	}
	return res, nil
}

func commercialSuite() []workload.Params {
	var out []workload.Params
	for _, p := range workload.Suite() {
		if p.Class != workload.Scientific {
			out = append(out, p)
		}
	}
	return out
}
