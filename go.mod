module reunion

go 1.24
