package reunion

// Distributed-execution acceptance: for both a sweep spec and a fault
// campaign, the merged output of an N-shard run — any per-shard
// parallelism, including a shard killed mid-record and resumed — is
// byte-identical to the single-process JSONL stream. These tests drive
// the same internal/dist Plan/Journal/Merge layer the CLI -shard,
// -journal, -resume flags and reunion-merge use, against real
// simulations (the campaign shards inject real mid-trial faults).

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"reunion/internal/campaign"
	"reunion/internal/dist"
	"reunion/internal/sweep"
)

// truncateFile chops n bytes off the end of a journal — the
// kill-mid-record simulation (it also destroys any footer).
func truncateFile(t *testing.T, path string, n int64) {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() <= n {
		t.Fatalf("journal %s only has %d bytes, cannot chop %d", path, st.Size(), n)
	}
	if err := os.Truncate(path, st.Size()-n); err != nil {
		t.Fatal(err)
	}
}

func shardSweepSpec() sweep.Spec[Options] {
	base := Options{WarmCycles: 2_000, MeasureCycles: 1_500}
	return sweep.Spec[Options]{
		Name: "shard-sweep",
		Base: base,
		Axes: []sweep.Axis[Options]{
			sweep.NewAxis("workload", []string{"apache", "sparse"},
				func(s string) string { return s },
				func(o *Options, s string) { o.Workload = mustWorkload(s) }),
			sweep.NewAxis("mode", []Mode{ModeNonRedundant, ModeReunion}, Mode.String,
				func(o *Options, m Mode) { o.Mode = m }),
			sweep.NewAxis("seed", []uint64{1, 2},
				func(s uint64) string { return strconv.FormatUint(s, 10) },
				func(o *Options, s uint64) { o.Seed = s }),
		},
	}
}

// sweepEmit reproduces the reunion-sweep CLI's record encoding, so the
// test proves exactly what the CLI's sharded mode proves.
func sweepEmit(spec sweep.Spec[Options], sink sweep.Sink) func(sweep.Result[Options, Result]) error {
	return func(r sweep.Result[Options, Result]) error {
		var metrics map[string]float64
		if r.Err == nil {
			metrics = r.Out.Metrics()
		}
		return sink.Write(sweep.NewRecord(spec.Name, r.Point.Index, r.Point.LabelMap(), metrics, r.Err))
	}
}

func TestShardedSweepKillResumeByteIdentical(t *testing.T) {
	spec := shardSweepSpec()
	ctx := context.Background()

	var ref bytes.Buffer
	runner := sweep.Runner[Options, Result]{
		Parallelism: 3,
		Run: func(_ context.Context, p sweep.Point[Options]) (Result, error) {
			return Run(p.Config)
		},
		Emit: sweepEmit(spec, sweep.NewJSONL(&ref)),
	}
	if _, err := runner.Sweep(ctx, spec); err != nil {
		t.Fatal(err)
	}

	const nshards = 3
	dir := t.TempDir()
	paths := make([]string, nshards)
	runSlice := func(jnl *dist.Journal, par int) {
		t.Helper()
		r := sweep.Runner[Options, Result]{
			Parallelism: par,
			Run: func(_ context.Context, p sweep.Point[Options]) (Result, error) {
				return Run(p.Config)
			},
			Emit: sweepEmit(spec, jnl),
		}
		if _, err := r.SweepIndices(ctx, spec, jnl.Remaining()); err != nil {
			t.Fatal(err)
		}
	}

	for s := 0; s < nshards; s++ {
		plan, err := dist.NewPlan(spec.Name, spec.Size(), s, nshards)
		if err != nil {
			t.Fatal(err)
		}
		paths[s] = filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", s))
		jnl, err := dist.Create(paths[s], plan)
		if err != nil {
			t.Fatal(err)
		}

		switch s {
		case 1:
			// Kill mid-record: complete the slice but crash before Finish,
			// with the last record torn. Resume must recompute only the tail.
			runSlice(jnl, 2)
			if err := jnl.Close(); err != nil {
				t.Fatal(err)
			}
			truncateFile(t, paths[s], 33)
			jnl, err = dist.Open(paths[s], plan)
			if err != nil {
				t.Fatal(err)
			}
			if jnl.Done() != plan.Count()-1 {
				t.Fatalf("shard 1 resumed at %d, want %d (one torn record dropped)", jnl.Done(), plan.Count()-1)
			}
			runSlice(jnl, 1)
		case 2:
			// Kill between records: journal one run, crash, resume the rest
			// under a different parallelism.
			one := jnl.Remaining()[:1]
			r := sweep.Runner[Options, Result]{
				Run:  func(_ context.Context, p sweep.Point[Options]) (Result, error) { return Run(p.Config) },
				Emit: sweepEmit(spec, jnl),
			}
			if _, err := r.SweepIndices(ctx, spec, one); err != nil {
				t.Fatal(err)
			}
			if err := jnl.Close(); err != nil {
				t.Fatal(err)
			}
			jnl, err = dist.Open(paths[s], plan)
			if err != nil {
				t.Fatal(err)
			}
			if jnl.Done() != 1 {
				t.Fatalf("shard 2 resumed at %d, want 1", jnl.Done())
			}
			runSlice(jnl, 3)
		default:
			runSlice(jnl, 2)
		}
		if err := jnl.Finish(); err != nil {
			t.Fatal(err)
		}
	}

	var merged bytes.Buffer
	info, err := dist.Merge(&merged, []string{paths[2], paths[0], paths[1]})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != spec.Size() {
		t.Fatalf("merged %d records, want %d", info.Records, spec.Size())
	}
	if !bytes.Equal(merged.Bytes(), ref.Bytes()) {
		t.Fatal("merged shard stream differs from the single-process sweep JSONL")
	}
}

func shardCampaignSpec() campaign.Spec[Options] {
	return campaign.Spec[Options]{
		Name: "shard-e2e",
		Matrix: sweep.Spec[Options]{
			Name: "shard-e2e",
			Base: injectTestOptions(),
			Axes: []sweep.Axis[Options]{
				sweep.NewAxis("mode", []Mode{ModeReunion, ModeNonRedundant}, Mode.String,
					func(o *Options, m Mode) { o.Mode = m }),
			},
		},
		Model:         campaign.FaultModel{WindowHi: 400},
		Trials:        4,
		Seed:          0xfa017,
		StreamExclude: []string{"mode"},
	}
}

func TestShardedCampaignKillResumeByteIdentical(t *testing.T) {
	spec := shardCampaignSpec()
	model := spec.Model
	total := spec.Matrix.Size() * spec.Trials // 2 cells × 4 trials
	ctx := context.Background()

	var ref bytes.Buffer
	refEng := campaign.Engine[Options]{
		Spec:        spec,
		RunTrial:    TrialRunner(model),
		Parallelism: 2,
		Sink:        sweep.NewJSONL(&ref),
	}
	refRep, err := refEng.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if refRep.Total.Trials() != int64(total) {
		t.Fatalf("reference classified %d of %d trials", refRep.Total.Trials(), total)
	}

	const nshards = 3
	dir := t.TempDir()
	paths := make([]string, nshards)
	for s := 0; s < nshards; s++ {
		plan, err := dist.NewPlan(spec.Name, total, s, nshards)
		if err != nil {
			t.Fatal(err)
		}
		paths[s] = filepath.Join(dir, fmt.Sprintf("trialshard-%d.jsonl", s))
		jnl, err := dist.Create(paths[s], plan)
		if err != nil {
			t.Fatal(err)
		}

		warm := NewWarmCache()
		run := func(jnl *dist.Journal) *campaign.Report {
			t.Helper()
			eng := campaign.Engine[Options]{
				Spec:        spec,
				RunTrial:    TrialRunnerWarm(model, warm),
				Parallelism: 2,
				Sink:        jnl,
				Indices:     jnl.Remaining(),
			}
			rep, err := eng.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}

		if s == 1 {
			// The kill-mid-trial-record case for a campaign shard: finish
			// the slice (real mid-trial fault injection in every record),
			// crash before Finish with a torn last record, resume.
			run(jnl)
			if err := jnl.Close(); err != nil {
				t.Fatal(err)
			}
			truncateFile(t, paths[s], 41)
			jnl, err = dist.Open(paths[s], plan)
			if err != nil {
				t.Fatal(err)
			}
			if jnl.Complete() || jnl.Done() >= plan.Count() {
				t.Fatalf("shard 1 after truncation: complete=%v done=%d", jnl.Complete(), jnl.Done())
			}
			run(jnl)
		} else {
			run(jnl)
		}
		if err := jnl.Finish(); err != nil {
			t.Fatal(err)
		}

		// Warm locality: a contiguous slice of the cells×trials space must
		// not warm checkpoints for cells outside the shard.
		cells := make(map[int]bool)
		for _, i := range plan.Indices() {
			cells[i/spec.Trials] = true
		}
		if got := warm.Len(); got > len(cells) {
			t.Fatalf("shard %d warmed %d checkpoints for %d cells", s, got, len(cells))
		}
		if got := warm.Len(); got >= spec.Matrix.Size() && len(cells) < spec.Matrix.Size() {
			t.Fatalf("shard %d warmed every cell (%d) despite owning only %d", s, got, len(cells))
		}
	}

	var merged bytes.Buffer
	info, err := dist.Merge(&merged, []string{paths[1], paths[2], paths[0]})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != total {
		t.Fatalf("merged %d records, want %d", info.Records, total)
	}
	if !bytes.Equal(merged.Bytes(), ref.Bytes()) {
		t.Fatal("merged campaign shard stream differs from the single-process JSONL")
	}
}

// TestCoverageExperimentSharded: ExpConfig.Shard/NShards restrict the
// coverage campaign to exactly one dist.Plan slice of the flattened
// trial space. (That independently-run slices cover the whole matrix
// exactly once, with identical records, is proven by the campaign
// engine's shard test and the byte-identity tests above; here one narrow
// shard keeps the real-simulation cost test-sized.)
func TestCoverageExperimentSharded(t *testing.T) {
	const shard, nshards = 3, 11
	c := ExpConfig{
		Seeds:         []uint64{1},
		WarmCycles:    2_000,
		MeasureCycles: 8_000, // commit target = 8000/16 = 500
		Shard:         shard,
		NShards:       nshards,
		base:          newMemo[Result](),
		warm:          NewWarmCache(),
	}
	rep, err := c.CoverageExperiment(1)
	if err != nil {
		t.Fatal(err)
	}
	// 2 modes × 2 phantoms × 11 workloads × 1 trial = 44 trials.
	plan, err := dist.NewPlan("coverage", 44, shard, nshards)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Total.Trials(); got != int64(plan.Count()) {
		t.Fatalf("sharded coverage ran %d trials, want the plan's %d", got, plan.Count())
	}

	// A bogus shard shape must fail before any simulation runs.
	bad := c
	bad.Shard, bad.NShards = 5, 3
	if _, err := bad.CoverageExperiment(1); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}
