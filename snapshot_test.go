package reunion

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"reunion/internal/fault"
	"reunion/internal/sweep"
	"reunion/internal/workload"
)

// A run restored from a warm checkpoint must be bit-identical to a
// straight-through run: same stat counters, same architectural and commit
// digests, byte-identical sweep JSONL. These tests are the contract the
// checkpoint subsystem (System.Snapshot/Restore, WarmCache) is held to,
// in the same style as the kernel A/B tests: any unsnapshotted state
// shows up here as the exact counter that diverged.

// snapRun executes the warm+measure methodology with a snapshot at the
// measurement boundary. perturb selects what happens between Snapshot and
// the measurement: nothing (the straight-through reference), or a
// divergent excursion — extra cycles, an injected fault, a stats reset —
// followed by Restore. Both must yield identical measurements.
func snapRun(t *testing.T, topo Topology, mode Mode, kern Kernel, cons Consistency, perturb bool) map[string]int64 {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Topology = topo
	cfg.Core.Consistency = cons
	w := workload.Apache().Build(7, 2)
	sys := NewSystem(cfg, mode, w, 7)
	sys.Kernel = kern
	sys.Prefill()
	sys.Run(6_000)
	cp := sys.Snapshot()
	if perturb {
		// Divergent excursion: run on, flip a datapath bit, reset stats,
		// run more — then rewind. Nothing of this may survive the restore.
		sys.Cores[0].ArmFault(13)
		sys.Run(2_500)
		sys.ResetStats()
		sys.Run(1_500)
		sys.Restore(cp)
	}
	sys.ResetStats()
	sys.Run(6_000)
	return systemStats(sys)
}

// TestSnapshotRestoreEquivalence proves restore-then-run equals
// straight-through across mode × topology × kernel × consistency: every
// statistic counter, the clock, and the architectural digest.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	for _, topo := range []Topology{TopologyDirectory, TopologySnoopy} {
		for _, mode := range []Mode{ModeNonRedundant, ModeStrict, ModeReunion} {
			for _, kern := range []Kernel{KernelNaive, KernelFastForward} {
				for _, cons := range []Consistency{TSO, SC} {
					label := fmt.Sprintf("%v/%v/%v/%v", topo, mode, kern, ConsistencyName(cons))
					straight := snapRun(t, topo, mode, kern, cons, false)
					restored := snapRun(t, topo, mode, kern, cons, true)
					diffStats(t, label, straight, restored)
				}
			}
		}
	}
}

// TestSnapshotNonInvasive proves Snapshot is read-only: a run that
// snapshots and continues matches one that never snapshotted.
func TestSnapshotNonInvasive(t *testing.T) {
	run := func(snapshot bool) map[string]int64 {
		w := workload.Ocean().Build(3, 2)
		sys := NewSystem(DefaultConfig(), ModeReunion, w, 3)
		sys.Prefill()
		sys.Run(5_000)
		if snapshot {
			_ = sys.Snapshot()
		}
		sys.ResetStats()
		sys.Run(5_000)
		return systemStats(sys)
	}
	diffStats(t, "snapshot-vs-none", run(false), run(true))
}

// TestSnapshotRepeatedRestore proves one checkpoint restores any number
// of times: three restored measurement runs from the same warm checkpoint
// are identical to each other and to the straight-through run.
func TestSnapshotRepeatedRestore(t *testing.T) {
	w := workload.DSSQ1().Build(5, 2)
	sys := NewSystem(DefaultConfig(), ModeReunion, w, 5)
	sys.Prefill()
	sys.Run(6_000)
	cp := sys.Snapshot()
	sys.ResetStats()
	sys.Run(6_000)
	want := systemStats(sys)
	for i := 0; i < 3; i++ {
		sys.Restore(cp)
		sys.ResetStats()
		sys.Run(6_000)
		diffStats(t, fmt.Sprintf("restore#%d", i+1), want, systemStats(sys))
	}
}

// TestSnapshotInterrupts covers the interrupt-delivery chain across a
// snapshot boundary: restored runs must service the same interrupts at
// the same comparison boundaries.
func TestSnapshotInterrupts(t *testing.T) {
	for _, mode := range []Mode{ModeNonRedundant, ModeReunion} {
		run := func(perturb bool) map[string]int64 {
			w := workload.Apache().Build(11, 2)
			sys := NewSystem(DefaultConfig(), mode, w, 11)
			sys.InterruptEvery = 293
			sys.InterruptCost = 77
			sys.Prefill()
			sys.Run(5_000)
			cp := sys.Snapshot()
			if perturb {
				sys.Run(2_000)
				sys.Restore(cp)
			}
			sys.ResetStats()
			sys.Run(5_000)
			return systemStats(sys)
		}
		straight := run(false)
		restored := run(true)
		diffStats(t, mode.String(), straight, restored)
		if straight["interrupts"] == 0 {
			t.Errorf("%v: no interrupts serviced in the measured window", mode)
		}
	}
}

// TestWarmCacheRunEquivalence proves the Run-level warm reuse: fresh runs
// and warm-cache runs (first fill, then repeated restores) produce deeply
// equal Results, including a mid-trial fault-injection case where the
// trial diverges hard from the golden run before the next restore.
func TestWarmCacheRunEquivalence(t *testing.T) {
	for _, mode := range []Mode{ModeReunion, ModeNonRedundant} {
		core := 1
		if mode == ModeNonRedundant {
			core = 0
		}
		golden := Options{
			Mode:         mode,
			Workload:     workload.Apache(),
			Seed:         17,
			WarmCycles:   6_000,
			CommitTarget: 1_200,
		}
		injected := golden
		injected.Inject = &fault.Injection{Cycle: 700, Core: core, Bit: 13}

		wantG, err := Run(golden)
		if err != nil {
			t.Fatalf("%v golden: %v", mode, err)
		}
		wantI, err := Run(injected)
		if err != nil {
			t.Fatalf("%v injected: %v", mode, err)
		}

		warm := NewWarmCache()
		golden.Warm, injected.Warm = warm, warm
		// Interleave golden and injected trials over one shared warm
		// checkpoint; every repetition must match the fresh runs exactly.
		for i, o := range []Options{golden, injected, injected, golden, injected} {
			got, err := Run(o)
			if err != nil {
				t.Fatalf("%v warm run %d: %v", mode, i, err)
			}
			want := wantG
			if o.Inject != nil {
				want = wantI
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v warm run %d diverged:\nfresh: %+v\nwarm:  %+v", mode, i, want, got)
			}
		}
	}
}

// TestWarmCacheMeasureWindows proves cells differing only in
// measurement-phase knobs share one warm checkpoint and still match
// their fresh runs: different measure windows, commit targets, and
// injections over a single key.
func TestWarmCacheMeasureWindows(t *testing.T) {
	warm := NewWarmCache()
	base := Options{
		Mode:       ModeReunion,
		Workload:   workload.DSSQ1(),
		Seed:       5,
		WarmCycles: 6_000,
	}
	for _, measure := range []int64{3_000, 7_000} {
		fresh := base
		fresh.MeasureCycles = measure
		want, err := Run(fresh)
		if err != nil {
			t.Fatal(err)
		}
		cached := fresh
		cached.Warm = warm
		got, err := Run(cached)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("measure=%d diverged:\nfresh: %+v\nwarm:  %+v", measure, want, got)
		}
	}
	if n := len(warm.m); n != 1 {
		t.Errorf("warm cache holds %d entries, want 1 (measurement knobs must not split the key)", n)
	}
}

// TestSnapshotSweepJSONL runs a sweep matrix through the experiment
// engine with and without the warm-state cache and requires the
// serialized JSONL result stream to be byte-identical — the end-to-end
// guarantee that no experiment artifact can tell warm reuse apart from
// re-warming.
func TestSnapshotSweepJSONL(t *testing.T) {
	var out [2]bytes.Buffer
	for i, warm := range []*WarmCache{nil, NewWarmCache()} {
		spec := sweep.Spec[Options]{
			Name: "snapshot-ab",
			Base: Options{Seed: 3, WarmCycles: 5_000, MeasureCycles: 5_000, Warm: warm},
			Axes: []sweep.Axis[Options]{
				sweep.NewAxis("workload", []workload.Params{workload.Apache(), workload.DSSQ1()},
					func(p workload.Params) string { return p.Name },
					func(o *Options, p workload.Params) { o.Workload = p }),
				sweep.NewAxis("mode", []Mode{ModeNonRedundant, ModeReunion}, Mode.String,
					func(o *Options, m Mode) { o.Mode = m }),
				sweep.NewAxis("target", []int64{0, 900},
					func(v int64) string { return fmt.Sprint(v) },
					func(o *Options, v int64) { o.CommitTarget = v }),
			},
		}
		sink := sweep.NewJSONL(&out[i])
		runner := sweep.Runner[Options, Result]{
			Parallelism: 4,
			Run: func(_ context.Context, p sweep.Point[Options]) (Result, error) {
				return Run(p.Config)
			},
			Emit: func(r sweep.Result[Options, Result]) error {
				var metrics map[string]float64
				if r.Err == nil {
					metrics = r.Out.Metrics()
				}
				return sink.Write(sweep.NewRecord(spec.Name, r.Point.Index, r.Point.LabelMap(), metrics, r.Err))
			},
		}
		if _, err := runner.Sweep(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Error("JSONL sweep output differs between re-warm and warm-reuse runs")
	}
}

// TestResetStatsKernelCounters is the regression test for the
// measurement-boundary audit: the scheduler's fast-forward accounting and
// the gates' interrupts-serviced counters must reset with the other
// statistics, or warmup bleeds into measured kernel-efficiency metrics.
func TestResetStatsKernelCounters(t *testing.T) {
	for _, mode := range []Mode{ModeNonRedundant, ModeStrict, ModeReunion} {
		w := workload.Apache().Build(3, 2)
		sys := NewSystem(DefaultConfig(), mode, w, 3)
		sys.InterruptEvery = 211
		sys.InterruptCost = 50
		sys.Prefill()
		sys.Run(6_000)
		if sys.Sched.Steps == 0 || sys.Sched.SkippedCycles == 0 || sys.Sched.FastForwards == 0 {
			t.Fatalf("%v: warmup did not exercise the fast-forward kernel (steps=%d jumps=%d skipped=%d)",
				mode, sys.Sched.Steps, sys.Sched.FastForwards, sys.Sched.SkippedCycles)
		}
		if sys.InterruptsServiced() == 0 {
			t.Fatalf("%v: warmup serviced no interrupts", mode)
		}
		sys.ResetStats()
		if sys.Sched.Steps != 0 || sys.Sched.FastForwards != 0 || sys.Sched.SkippedCycles != 0 {
			t.Errorf("%v: scheduler counters survived ResetStats (steps=%d jumps=%d skipped=%d)",
				mode, sys.Sched.Steps, sys.Sched.FastForwards, sys.Sched.SkippedCycles)
		}
		if n := sys.InterruptsServiced(); n != 0 {
			t.Errorf("%v: interrupts-serviced counter survived ResetStats (%d)", mode, n)
		}
	}
}
