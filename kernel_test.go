package reunion

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"reunion/internal/fault"
	"reunion/internal/sweep"
	"reunion/internal/workload"
)

// The quiescence-aware fast-forward kernel must be bit-identical to the
// naive per-cycle kernel: same cycle counts, same architectural digests,
// and the same value in every statistic counter, on every mode and
// topology. These tests are the contract the tentpole refactor is held
// to; any quiescence-predicate bug shows up here as a diff.

// systemStats flattens every statistic the system keeps into one named
// map so a kernel mismatch reports the exact counter that diverged.
func systemStats(sys *System) map[string]int64 {
	m := map[string]int64{
		"now": sys.EQ.Now(),
	}
	for _, c := range sys.Cores {
		p := func(k string, v int64) { m[fmt.Sprintf("core%d.%s", c.ID, k)] = v }
		p("committed", c.Stats.Committed)
		p("committed_loads", c.Stats.CommittedLoads)
		p("committed_stores", c.Stats.CommittedStores)
		p("mispredicts", c.Stats.Mispredicts)
		p("serializing", c.Stats.Serializing)
		p("itlb_misses", c.Stats.ITLBMisses)
		p("dtlb_misses", c.Stats.DTLBMisses)
		p("rob_occupancy", c.Stats.ROBOccupancy)
		p("check_occupancy", c.Stats.CheckOccupancy)
		p("cycles", c.Stats.Cycles)
		p("issue_stall_ser", c.Stats.IssueStallSer)
		p("sb_full_stalls", c.Stats.SBFullStalls)
		p("dev_reads", c.Stats.DevReads)
		p("l1d_hits", c.L1D.Hits)
		p("l1d_misses", c.L1D.Misses)
		p("l1d_merged", c.L1D.MergedMisses)
		p("l1d_fills", c.L1D.Fills)
		p("l1d_wb", c.L1D.WritebacksSent)
		p("l1d_retries", c.L1D.Retries)
		p("l1i_hits", c.L1I.Hits)
		p("l1i_misses", c.L1I.Misses)
		p("itlb_hits", c.ITLB.Hits)
		p("dtlb_hits", c.DTLB.Hits)
	}
	for _, pr := range sys.Pairs {
		p := func(k string, v int64) { m[fmt.Sprintf("pair%d.%s", pr.ID, k)] = v }
		p("recoveries", pr.Stats.Recoveries)
		p("incoherence", pr.Stats.IncoherenceEvents)
		p("fault_events", pr.Stats.FaultEvents)
		p("phase2", pr.Stats.Phase2)
		p("failures", pr.Stats.Failures)
		p("sync_requests", pr.Stats.SyncRequests)
		p("timeouts", pr.Stats.Timeouts)
		p("compares", pr.Stats.Compares)
		p("compare_wait_vocal", pr.Stats.CompareWaitVocal)
		p("compare_wait_mute", pr.Stats.CompareWaitMute)
	}
	if sys.L2 != nil {
		arr, wait := sys.L2.QueueStats()
		m["l2.reads"] = sys.L2.Reads
		m["l2.readx"] = sys.L2.ReadX
		m["l2.ifetches"] = sys.L2.Ifetches
		m["l2.hits"] = sys.L2.HitsL2
		m["l2.misses"] = sys.L2.MissesL2
		m["l2.recalls"] = sys.L2.Recalls
		m["l2.invalidations"] = sys.L2.Invalidations
		m["l2.mem_accesses"] = sys.L2.MemAccesses
		m["l2.phantom_reqs"] = sys.L2.PhantomReqs
		m["l2.phantom_garbage"] = sys.L2.PhantomGarbage
		m["l2.phantom_peeks"] = sys.L2.PhantomPeeks
		m["l2.phantom_mem_reads"] = sys.L2.PhantomMemReads
		m["l2.sync_requests"] = sys.L2.SyncRequests
		m["l2.writebacks"] = sys.L2.WritebacksRecv
		m["l2.retries_internal"] = sys.L2.RetriesInternal
		m["l2.mem_queue_wait"] = sys.L2.MemQueueWait
		m["l2.bank_arrivals"] = arr
		m["l2.bank_wait"] = wait
	}
	if sys.Bus != nil {
		m["bus.transactions"] = sys.Bus.Transactions
		m["bus.reads"] = sys.Bus.Reads
		m["bus.readx"] = sys.Bus.ReadX
		m["bus.ifetches"] = sys.Bus.Ifetches
		m["bus.snoop_hits"] = sys.Bus.SnoopHits
		m["bus.mem_accesses"] = sys.Bus.MemAccesses
		m["bus.writebacks"] = sys.Bus.WritebacksRecv
		m["bus.phantom_reqs"] = sys.Bus.PhantomReqs
		m["bus.phantom_garbage"] = sys.Bus.PhantomGarbage
		m["bus.sync_requests"] = sys.Bus.SyncRequests
		m["bus.retries"] = sys.Bus.Retries
		m["bus.mem_queue_wait"] = sys.Bus.MemQueueWait
	}
	m["arch_digest"] = int64(sys.ArchDigest())
	m["interrupts"] = sys.InterruptsServiced()
	return m
}

func diffStats(t *testing.T, label string, naive, ff map[string]int64) {
	t.Helper()
	for k, nv := range naive {
		if fv, ok := ff[k]; !ok || fv != nv {
			t.Errorf("%s: %s: naive=%d fastforward=%d", label, k, nv, fv)
		}
	}
	for k := range ff {
		if _, ok := naive[k]; !ok {
			t.Errorf("%s: %s only in fastforward stats", label, k)
		}
	}
}

// TestKernelEquivalence runs the warm+measure methodology under both
// kernels across mode × topology × workload × seed and requires every
// counter and the architectural digest to be bit-identical — and the
// fast-forward kernel to have actually skipped cycles somewhere (so the
// equivalence is not vacuous).
func TestKernelEquivalence(t *testing.T) {
	workloads := []workload.Params{workload.Apache(), workload.DSSQ1()}
	var skippedTotal int64
	for _, topo := range []Topology{TopologyDirectory, TopologySnoopy} {
		for _, mode := range []Mode{ModeNonRedundant, ModeStrict, ModeReunion} {
			for _, p := range workloads {
				for _, seed := range []uint64{3, 0x5eed} {
					label := fmt.Sprintf("%v/%v/%s/seed%d", topo, mode, p.Name, seed)
					var stats [2]map[string]int64
					for i, kern := range []Kernel{KernelNaive, KernelFastForward} {
						cfg := DefaultConfig()
						cfg.Topology = topo
						w := p.Build(seed, 2)
						sys := NewSystem(cfg, mode, w, seed)
						sys.Kernel = kern
						sys.Prefill()
						sys.Run(8_000)
						sys.ResetStats()
						sys.Run(8_000)
						stats[i] = systemStats(sys)
						if kern == KernelFastForward {
							skippedTotal += sys.Sched.SkippedCycles
						}
					}
					diffStats(t, label, stats[0], stats[1])
				}
			}
		}
	}
	if skippedTotal == 0 {
		t.Error("fast-forward kernel never skipped a cycle across the whole matrix; equivalence is vacuous")
	}
	t.Logf("fast-forward skipped %d idle cycles across the matrix", skippedTotal)
}

// TestKernelEquivalenceInterrupts covers the interrupt-heavy path: the
// periodic boundary is a scheduled event, and both kernels must service
// the same interrupts at the same comparison boundaries, halting at the
// same cycle.
func TestKernelEquivalenceInterrupts(t *testing.T) {
	for _, mode := range []Mode{ModeNonRedundant, ModeReunion} {
		var cycles [2]int64
		var stats [2]map[string]int64
		for i, kern := range []Kernel{KernelNaive, KernelFastForward} {
			w := workload.MicroCounter(2, 40)
			sys := NewSystem(DefaultConfig(), mode, w, 11)
			sys.Kernel = kern
			sys.InterruptEvery = 293
			sys.InterruptCost = 77
			n, halted := sys.RunUntilHalted(20_000_000)
			if !halted {
				t.Fatalf("%v/%v: did not halt", mode, kern)
			}
			cycles[i] = n
			stats[i] = systemStats(sys)
			if got, _ := sys.CoherentWord(workload.CounterAddr); got != 80 {
				t.Fatalf("%v/%v: counter=%d want 80", mode, kern, got)
			}
		}
		if cycles[0] != cycles[1] {
			t.Errorf("%v: halted at naive=%d fastforward=%d cycles", mode, cycles[0], cycles[1])
		}
		diffStats(t, mode.String(), stats[0], stats[1])
		if stats[1]["interrupts"] == 0 {
			t.Errorf("%v: no interrupts serviced", mode)
		}
	}
}

// TestKernelEquivalenceTrial covers the fault-injection trial path: a
// precise single-shot injection with a commit-target boundary must
// classify identically (digests, detection latency, trial cycles) under
// both kernels.
func TestKernelEquivalenceTrial(t *testing.T) {
	for _, mode := range []Mode{ModeReunion, ModeNonRedundant} {
		core := 1
		if mode == ModeNonRedundant {
			core = 0
		}
		var res [2]Result
		for i, kern := range []Kernel{KernelNaive, KernelFastForward} {
			r, err := Run(Options{
				Mode:         mode,
				Workload:     workload.Apache(),
				Seed:         17,
				Kernel:       kern,
				Inject:       &fault.Injection{Cycle: 900, Core: core, Bit: 13},
				WarmCycles:   6_000,
				CommitTarget: 1_500,
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", mode, kern, err)
			}
			res[i] = r
		}
		if !reflect.DeepEqual(res[0], res[1]) {
			t.Errorf("%v: trial results differ:\nnaive:       %+v\nfastforward: %+v", mode, res[0], res[1])
		}
	}
}

// TestKernelEquivalenceTLBConsistency covers the remaining timing-model
// dimensions: software-managed TLBs (serializing trap handlers, the
// hardest per-cycle stall accounting) and sequential consistency (every
// store serializing).
func TestKernelEquivalenceTLBConsistency(t *testing.T) {
	for _, mode := range []Mode{ModeStrict, ModeReunion} {
		var res [2]Result
		for i, kern := range []Kernel{KernelNaive, KernelFastForward} {
			r, err := Run(Options{
				Mode:          mode,
				Workload:      workload.Apache(),
				Seed:          9,
				Kernel:        kern,
				TLB:           TLBSoftware,
				Consistency:   SC,
				WarmCycles:    6_000,
				MeasureCycles: 6_000,
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", mode, kern, err)
			}
			res[i] = r
		}
		if !reflect.DeepEqual(res[0], res[1]) {
			t.Errorf("%v: results differ:\nnaive:       %+v\nfastforward: %+v", mode, res[0], res[1])
		}
	}
}

// TestKernelEquivalenceJSONL runs a small sweep matrix through the
// experiment engine under both kernels and requires the serialized JSONL
// result stream to be byte-identical — the end-to-end guarantee that no
// experiment artifact can tell the kernels apart.
func TestKernelEquivalenceJSONL(t *testing.T) {
	var out [2]bytes.Buffer
	for i, kern := range []Kernel{KernelNaive, KernelFastForward} {
		spec := sweep.Spec[Options]{
			Name: "kernel-ab",
			Base: Options{Seed: 3, WarmCycles: 5_000, MeasureCycles: 5_000, Kernel: kern},
			Axes: []sweep.Axis[Options]{
				sweep.NewAxis("workload", []workload.Params{workload.Apache(), workload.DSSQ1()},
					func(p workload.Params) string { return p.Name },
					func(o *Options, p workload.Params) { o.Workload = p }),
				sweep.NewAxis("mode", []Mode{ModeNonRedundant, ModeReunion}, Mode.String,
					func(o *Options, m Mode) { o.Mode = m }),
			},
		}
		sink := sweep.NewJSONL(&out[i])
		runner := sweep.Runner[Options, Result]{
			Run: func(_ context.Context, p sweep.Point[Options]) (Result, error) {
				return Run(p.Config)
			},
			Emit: func(r sweep.Result[Options, Result]) error {
				var metrics map[string]float64
				if r.Err == nil {
					metrics = r.Out.Metrics()
				}
				return sink.Write(sweep.NewRecord(spec.Name, r.Point.Index, r.Point.LabelMap(), metrics, r.Err))
			},
		}
		if _, err := runner.Sweep(context.Background(), spec); err != nil {
			t.Fatalf("%v: %v", kern, err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Error("JSONL experiment output differs between kernels")
	}
}

// TestKernelEquivalenceRun checks the public Run entry point end to end:
// the Result structs (every metric, including derived floats computed
// from identical integers) must be deeply equal.
func TestKernelEquivalenceRun(t *testing.T) {
	for _, mode := range []Mode{ModeNonRedundant, ModeStrict, ModeReunion} {
		var res [2]Result
		for i, kern := range []Kernel{KernelNaive, KernelFastForward} {
			r, err := Run(Options{
				Mode:          mode,
				Workload:      workload.Ocean(),
				Seed:          5,
				Kernel:        kern,
				WarmCycles:    8_000,
				MeasureCycles: 8_000,
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", mode, kern, err)
			}
			res[i] = r
		}
		if !reflect.DeepEqual(res[0], res[1]) {
			t.Errorf("%v: results differ:\nnaive:       %+v\nfastforward: %+v", mode, res[0], res[1])
		}
	}
}
