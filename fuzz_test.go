package reunion

import (
	"testing"

	"reunion/internal/interp"
	"reunion/internal/isa"
	"reunion/internal/workload"
)

// TestRandomProgramsDifferential is the heavy-calibre correctness test:
// random programs (ALU dataflow, memory ops, CAS, skip branches, counted
// loops, membars, traps) must produce bit-identical architectural results
// on the golden interpreter, the non-redundant pipeline, and the vocal
// core of a Reunion pair.
func TestRandomProgramsDifferential(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for s := 0; s < seeds; s++ {
		seed := uint64(1000 + s*7919)
		w := workload.RandomProgram(seed, 120, 0)

		// Golden reference.
		mRef := newMemWrap(w)
		ref, err := interp.Run(w.Threads[0], mRef, 1_000_000, nil)
		if err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}
		if !ref.Halted {
			t.Fatalf("seed %d: interpreter did not halt", seed)
		}

		for _, mode := range []Mode{ModeNonRedundant, ModeReunion} {
			w2 := workload.RandomProgram(seed, 120, 0)
			sys := NewSystem(DefaultConfig(), mode, w2, seed)
			if _, halted := sys.RunUntilHalted(5_000_000); !halted {
				t.Fatalf("seed %d %v: pipeline did not halt\n%s", seed, mode, sys.Cores[0].DumpState())
			}
			if sys.Failed() {
				t.Fatalf("seed %d %v: failure signalled", seed, mode)
			}
			arf := sys.Cores[0].ARF()
			for r := 0; r < isa.NumRegs; r++ {
				if arf[r] != ref.Regs[r] {
					t.Fatalf("seed %d %v: r%d = %d, golden %d", seed, mode, r, arf[r], ref.Regs[r])
				}
			}
			// Memory side: compare the coherent view of the region against
			// the interpreter's memory for every touched word.
			base := uint64(workload.PrivateBase)
			for off := uint64(0); off < 4096; off += 8 {
				want := int64(mRef.ReadWord(base + off))
				got, _ := sys.CoherentWord(base + off)
				if got != want {
					t.Fatalf("seed %d %v: mem[%#x] = %d, golden %d", seed, mode, base+off, got, want)
				}
			}
			if mode == ModeReunion {
				// The mute's architectural state must match too.
				if sys.Cores[1].ARF() != arf {
					t.Fatalf("seed %d: mute ARF diverged from vocal", seed)
				}
			}
		}
	}
}

// TestRandomProgramsUnderStress re-runs a subset of random programs under
// hostile configurations: null phantoms (constant recovery), long
// fingerprint intervals, software TLBs and sequential consistency — the
// results must still be bit-exact.
func TestRandomProgramsUnderStress(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	type variant struct {
		name string
		mut  func(*Config)
	}
	variants := []variant{
		{"null-phantom", func(c *Config) { c.L2.Phantom = PhantomNull }},
		{"interval-50", func(c *Config) { c.Core.FPInterval = 50 }},
		{"software-tlb", func(c *Config) { c.Core.TLB.Mode = TLBSoftware }},
		{"sequential-consistency", func(c *Config) { c.Core.Consistency = SC }},
		{"tiny-rob", func(c *Config) { c.Core.ROBSize = 16; c.Core.CheckQCap = 16; c.Core.SBSize = 8 }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			for s := 0; s < 6; s++ {
				seed := uint64(5000 + s*104729)
				w := workload.RandomProgram(seed, 80, 0)
				mRef := newMemWrap(w)
				ref, err := interp.Run(w.Threads[0], mRef, 1_000_000, nil)
				if err != nil || !ref.Halted {
					t.Fatalf("seed %d: interp: %v", seed, err)
				}
				cfg := DefaultConfig()
				v.mut(&cfg)
				w2 := workload.RandomProgram(seed, 80, 0)
				sys := NewSystem(cfg, ModeReunion, w2, seed)
				if _, halted := sys.RunUntilHalted(30_000_000); !halted {
					t.Fatalf("seed %d: did not halt\n%s", seed, sys.Cores[0].DumpState())
				}
				arf := sys.Cores[0].ARF()
				for r := 0; r < isa.NumRegs; r++ {
					if arf[r] != ref.Regs[r] {
						t.Fatalf("seed %d: r%d = %d, golden %d", seed, r, arf[r], ref.Regs[r])
					}
				}
			}
		})
	}
}

// TestRandomProgramsConcurrent runs four different random programs on the
// four logical processors simultaneously. Their data regions are disjoint,
// so each thread's architectural result must match its own single-threaded
// golden run exactly — any cross-thread interference through the shared
// memory system (directory bugs, misrouted fills, recovery cross-talk)
// shows up as divergence.
func TestRandomProgramsConcurrent(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		base := uint64(9000 + round*31337)
		combined := &workload.Workload{Name: "fuzz-concurrent", Class: "fuzz"}
		var golden [4][32]int64
		inits := make([]func(m *memWrap), 0, 4)
		for tid := 0; tid < 4; tid++ {
			w := workload.RandomProgram(base+uint64(tid), 100, tid)
			combined.Threads = append(combined.Threads, w.Threads[0])
			init := w.Init
			inits = append(inits, func(m *memWrap) { init(m) })
			mRef := newMemWrap(w)
			ref, err := interp.Run(w.Threads[0], mRef, 1_000_000, nil)
			if err != nil || !ref.Halted {
				t.Fatalf("round %d tid %d: interp %v", round, tid, err)
			}
			golden[tid] = ref.Regs
		}
		combined.Init = func(m *memWrap) {
			for _, f := range inits {
				f(m)
			}
		}
		for _, mode := range []Mode{ModeNonRedundant, ModeReunion} {
			sys := NewSystem(DefaultConfig(), mode, combined, base)
			if _, halted := sys.RunUntilHalted(20_000_000); !halted {
				t.Fatalf("round %d %v: did not halt", round, mode)
			}
			for _, c := range sys.VocalCores() {
				if c.ARF() != golden[c.Pair] {
					t.Fatalf("round %d %v: thread %d diverged from golden", round, mode, c.Pair)
				}
			}
		}
	}
}
